"""Typed plugin registries and the component spec-string grammar.

Every axis of an experiment that used to be wired through a name switch
(schedulers in ``analysis/harness.py``, routers in ``cluster/router.py``,
trace kinds in ``analysis/runner.py``, model setups) is now a *registry*
of components.  A component registers itself at definition site with a
decorator, declaring

- a canonical **name** (``vllm-spec``, ``affinity``, ``diurnal``, ...);
- a typed **parameter schema** (:class:`Param`), so hyperparameters such
  as the static speculation length are first-class, introspectable sweep
  axes rather than name suffixes;
- optional **legacy aliases** that bind parameters (``vllm-spec-6`` is
  an alias for ``vllm-spec`` with ``k=6``), keeping every historical
  name working.

Components are referenced by **spec strings** with the grammar::

    name[:key=value[,key=value...]]

e.g. ``vllm-spec:k=8``, ``affinity:reserve=0.4``, ``diurnal:peak_to_trough=6``.
:meth:`Registry.canonical` rewrites any accepted spelling (alias,
reordered keys, explicitly spelled defaults) into one canonical string —
parameters sorted by name, defaulted parameters omitted — so equivalent
specs hash identically everywhere they are used as cache-key material.

The design follows dynamic service registration (licas, arXiv:1403.0753):
the registry never imports the components; components import the registry
and announce themselves.  :func:`load_components` performs the lazy
one-shot import of the built-in component modules the first time any
registry is *queried* (registration itself never triggers it).
"""

from __future__ import annotations

import importlib
import inspect
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass


class SpecError(ValueError):
    """A component spec string that cannot be parsed or validated."""


class UnknownComponentError(SpecError, KeyError):
    """A spec names a component that is not registered.

    Subclasses both ``ValueError`` and ``KeyError``: historical call
    sites (``make_scheduler``, ``make_router``, ``ExperimentConfig``)
    raised one or the other, and both idioms keep working.
    """

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0] if self.args else ""


class UnknownParamError(SpecError, KeyError):
    """A spec sets a parameter the component does not declare."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


#: Sentinel for parameters without a default (must be given explicitly).
REQUIRED = object()

#: Spelling of ``None`` in spec strings (e.g. ``affinity:reserve=auto``).
AUTO_TOKEN = "auto"

_PARAM_KINDS = ("int", "float", "str", "bool")


@dataclass(frozen=True)
class Param:
    """One typed, introspectable component parameter.

    Parameters
    ----------
    name:
        Key in spec strings (``k`` in ``vllm-spec:k=8``).
    kind:
        Value type: ``int``, ``float``, ``str``, or ``bool``.
    default:
        Value when the spec omits the key; :data:`REQUIRED` forces the
        key to be present.
    help:
        One-line description (shown by ``repro list``).
    dest:
        Factory keyword argument the value is passed as (defaults to
        ``name``).
    allow_auto:
        Accept the literal ``auto`` as the value, parsed to ``None``
        (for "pick it adaptively" parameters).
    minimum, maximum:
        Optional bounds on numeric values, checked at parse time so an
        out-of-range spec fails fast (at the CLI parser / spec
        construction) instead of crashing the component constructor
        mid-sweep.  Inclusive by default; ``exclusive_min`` /
        ``exclusive_max`` make a bound strict.
    """

    name: str
    kind: str
    default: object = REQUIRED
    help: str = ""
    dest: str | None = None
    allow_auto: bool = False
    minimum: float | None = None
    maximum: float | None = None
    exclusive_min: bool = False
    exclusive_max: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _PARAM_KINDS:
            raise ValueError(f"param kind must be one of {_PARAM_KINDS}, got {self.kind!r}")

    def _check_bounds(self, value: object) -> object:
        if value is None:
            return value
        too_low = self.minimum is not None and (
            value < self.minimum or (self.exclusive_min and value == self.minimum)
        )
        too_high = self.maximum is not None and (
            value > self.maximum or (self.exclusive_max and value == self.maximum)
        )
        if too_low or too_high:
            raise SpecError(
                f"parameter {self.name!r} must be in {self.range_text()}, got {value!r}"
            )
        return value

    def range_text(self) -> str:
        """Human-readable bound interval, e.g. ``(0, 1]`` or ``[1, inf)``."""
        lo = "-inf" if self.minimum is None else f"{self.minimum:g}"
        hi = "inf" if self.maximum is None else f"{self.maximum:g}"
        open_b = "(" if (self.exclusive_min or self.minimum is None) else "["
        close_b = ")" if (self.exclusive_max or self.maximum is None) else "]"
        return f"{open_b}{lo}, {hi}{close_b}"

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    @property
    def kwarg(self) -> str:
        """Factory keyword this parameter binds to."""
        return self.dest or self.name

    # ------------------------------------------------------------------
    def parse(self, text: str) -> object:
        """Parse a spec-string value token into a typed, bounds-checked value."""
        if self.allow_auto and text == AUTO_TOKEN:
            return None
        try:
            if self.kind == "int":
                typed: object = int(text)
            elif self.kind == "float":
                typed = float(text)
            elif self.kind == "bool":
                if text in ("true", "1"):
                    typed = True
                elif text in ("false", "0"):
                    typed = False
                else:
                    raise ValueError(text)
            else:
                typed = text
        except ValueError:
            raise SpecError(
                f"parameter {self.name!r} expects a {self.kind}"
                f"{' (or auto)' if self.allow_auto else ''}, got {text!r}"
            ) from None
        return self._check_bounds(typed)

    def coerce(self, value: object) -> object:
        """Validate/normalize an already-typed value (e.g. a grid cell)."""
        if isinstance(value, str):
            return self.parse(value)
        if value is None:
            if not self.allow_auto:
                raise SpecError(f"parameter {self.name!r} does not accept auto/None")
            return None
        try:
            if self.kind == "int":
                if isinstance(value, float) and not value.is_integer():
                    raise ValueError(value)
                typed: object = int(value)
            elif self.kind == "float":
                typed = float(value)
            elif self.kind == "bool":
                if not isinstance(value, bool):
                    raise ValueError(value)
                typed = value
            else:
                raise ValueError(value)  # non-str for a str param
        except (TypeError, ValueError):
            raise SpecError(
                f"parameter {self.name!r} expects a {self.kind}, got {value!r}"
            ) from None
        return self._check_bounds(typed)

    def format(self, value: object) -> str:
        """Canonical spec-string token for a typed value (parse inverse)."""
        if value is None:
            return AUTO_TOKEN
        if self.kind == "bool":
            return "true" if value else "false"
        if self.kind == "float":
            return repr(float(value))  # repr round-trips exactly in py3
        return str(value)

    def describe(self) -> str:
        """Schema line for ``repro list`` output."""
        if self.required:
            head = f"{self.name}: {self.kind} (required)"
        else:
            head = f"{self.name}: {self.kind} = {self.format(self.default)}"
        if self.minimum is not None or self.maximum is not None:
            head += f" (in {self.range_text()})"
        return f"{head} — {self.help}" if self.help else head


@dataclass(frozen=True)
class Component:
    """Registered factory plus its descriptor (name, schema, aliases)."""

    kind: str
    name: str
    factory: Callable
    params: tuple[Param, ...] = ()
    #: alias -> parameter bindings applied when the alias is used.
    aliases: tuple[tuple[str, tuple[tuple[str, object], ...]], ...] = ()
    summary: str = ""

    def param(self, key: str) -> Param:
        for p in self.params:
            if p.name == key:
                return p
        raise UnknownParamError(
            f"unknown parameter {key!r} for {self.kind} {self.name!r}; "
            f"declared parameters: {[p.name for p in self.params] or 'none'}"
        )

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)


@dataclass(frozen=True)
class Resolved:
    """A fully resolved spec: component + complete parameter values."""

    component: Component
    #: Every declared parameter, defaults filled in.
    params: dict

    @property
    def name(self) -> str:
        return self.component.name

    @property
    def canonical(self) -> str:
        """Canonical spec string: sorted keys, defaults omitted."""
        parts = []
        for p in sorted(self.component.params, key=lambda p: p.name):
            value = self.params[p.name]
            if not p.required and value == p.default and type(value) is type(p.default):
                continue
            parts.append(f"{p.name}={p.format(value)}")
        if not parts:
            return self.component.name
        return f"{self.component.name}:{','.join(parts)}"

    def kwargs(self) -> dict:
        """Parameter values keyed by their factory keyword (``dest``)."""
        return {
            p.kwarg: self.params[p.name]
            for p in self.component.params
            if self.params[p.name] is not None or p.allow_auto
        }


def parse_spec(text: str) -> tuple[str, dict[str, str]]:
    """Split ``name[:key=val,...]`` into (name, raw key/value tokens).

    Pure grammar — no registry lookup.  Raises :class:`SpecError` on
    malformed input, naming what is wrong.
    """
    if not isinstance(text, str):
        raise SpecError(f"component spec must be a string, got {text!r}")
    text = text.strip()
    name, sep, rest = text.partition(":")
    name = name.strip().lower()
    if not name:
        raise SpecError(f"empty component name in spec {text!r}")
    raw: dict[str, str] = {}
    if sep and not rest.strip():
        raise SpecError(f"spec {text!r} has a ':' but no parameters")
    if rest.strip():
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not key or not value:
                raise SpecError(
                    f"malformed parameter {item.strip()!r} in spec {text!r} "
                    "(expected key=value)"
                )
            if key in raw:
                raise SpecError(f"duplicate parameter {key!r} in spec {text!r}")
            raw[key] = value
    return name, raw


class Registry:
    """A named collection of components of one kind.

    Components register via :meth:`register` (a decorator); consumers
    resolve spec strings via :meth:`resolve` / :meth:`canonical` and
    instantiate via :meth:`create`.  Lookup lazily imports the built-in
    component modules (:func:`load_components`) so a registry is fully
    populated however the process entered the library.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._components: dict[str, Component] = {}
        self._aliases: dict[str, tuple[str, tuple[tuple[str, object], ...]]] = {}

    # -- registration (never triggers component loading) ----------------
    def register(
        self,
        name: str,
        *,
        params: Iterable[Param] = (),
        aliases: Mapping[str, Mapping[str, object]] | None = None,
        summary: str = "",
    ) -> Callable:
        """Class/function decorator announcing a component.

        ``aliases`` maps each legacy name to the parameter values it
        binds (``{"vllm-spec-6": {"k": 6}}``).
        """
        name = name.lower()
        params = tuple(params)
        alias_items = tuple(
            (alias.lower(), tuple(sorted(bindings.items())))
            for alias, bindings in (aliases or {}).items()
        )

        def decorator(factory: Callable) -> Callable:
            if name in self._components or name in self._aliases:
                raise ValueError(f"duplicate {self.kind} registration: {name!r}")
            component = Component(
                kind=self.kind,
                name=name,
                factory=factory,
                params=params,
                aliases=alias_items,
                summary=summary,
            )
            for alias, bindings in alias_items:
                if alias in self._components or alias in self._aliases:
                    raise ValueError(f"duplicate {self.kind} alias: {alias!r}")
                for key, value in bindings:
                    component.param(key).coerce(value)
                self._aliases[alias] = (name, bindings)
            self._components[name] = component
            return factory

        return decorator

    # -- enumeration ----------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Canonical component names, in registration order."""
        load_components()
        return tuple(self._components)

    def legacy_names(self) -> tuple[str, ...]:
        """Every accepted bare name: canonical names plus aliases."""
        load_components()
        return tuple(self._components) + tuple(self._aliases)

    def components(self) -> tuple[Component, ...]:
        load_components()
        return tuple(self._components.values())

    def __contains__(self, name: str) -> bool:
        load_components()
        key = name.lower()
        return key in self._components or key in self._aliases

    # -- resolution -----------------------------------------------------
    def resolve(self, spec: str) -> Resolved:
        """Parse + validate a spec string against the registry."""
        load_components()
        name, raw = parse_spec(spec)
        bound: dict[str, object] = {}
        if name in self._aliases:
            name, bindings = self._aliases[name]
            bound.update(bindings)
        component = self._components.get(name)
        if component is None:
            raise UnknownComponentError(
                f"unknown {self.kind} {spec!r}; registered: "
                f"{sorted(self.legacy_names())}"
            )
        values: dict[str, object] = {}
        for key, token in raw.items():
            param = component.param(key)  # raises UnknownParamError
            if key in bound:
                raise SpecError(
                    f"parameter {key!r} is fixed to {bound[key]!r} by the alias "
                    f"and cannot be overridden in {spec!r}; use {component.name!r} directly"
                )
            values[key] = param.parse(token)
        for key, value in bound.items():
            values[key] = component.param(key).coerce(value)
        for p in component.params:
            if p.name not in values:
                if p.required:
                    raise SpecError(
                        f"{self.kind} {component.name!r} requires parameter {p.name!r}"
                    )
                values[p.name] = p.default
        return Resolved(component=component, params=values)

    def canonical(self, spec: str) -> str:
        """Canonical spelling of any accepted spec string."""
        return self.resolve(spec).canonical

    def with_params(self, spec: str, **overrides) -> str:
        """Canonical spec with parameters overridden (grid-sweep helper).

        Override values may be raw strings (parsed per schema) or typed
        values; unknown keys raise :class:`UnknownParamError` naming the
        declared alternatives.
        """
        resolved = self.resolve(spec)
        values = dict(resolved.params)
        for key, value in overrides.items():
            values[key] = resolved.component.param(key).coerce(value)
        return Resolved(component=resolved.component, params=values).canonical

    # -- construction ---------------------------------------------------
    def create(self, spec: str, *args, **extra):
        """Instantiate a component from a spec string.

        ``extra`` keyword arguments are wiring the caller supplies (an
        engine seed, scheduler overrides, ...): keys the factory cannot
        accept are dropped, and keys colliding with spec parameters win
        over the spec (explicit call-site overrides beat the string).
        """
        resolved = self.resolve(spec)
        kwargs = resolved.kwargs()
        kwargs.update(_filter_kwargs(resolved.component.factory, extra))
        return resolved.component.factory(*args, **kwargs)

    # -- introspection --------------------------------------------------
    def describe(self) -> list[dict]:
        """Rows for ``repro list``: name, summary, aliases, param schema."""
        load_components()
        rows = []
        for component in self._components.values():
            aliases = []
            for alias, bindings in component.aliases:
                bound = ",".join(
                    f"{k}={component.param(k).format(v)}" for k, v in bindings
                )
                aliases.append(f"{alias} (= {component.name}:{bound})" if bound else alias)
            rows.append(
                {
                    "name": component.name,
                    "summary": component.summary,
                    "aliases": aliases,
                    "params": [p.describe() for p in component.params],
                }
            )
        return rows


def _filter_kwargs(factory: Callable, extra: Mapping[str, object]) -> dict:
    """The subset of ``extra`` that ``factory``'s signature can accept."""
    if not extra:
        return {}
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without signatures
        return dict(extra)
    accepts_any = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in sig.parameters.values()
    )
    if accepts_any:
        return dict(extra)
    allowed = {
        n
        for n, p in sig.parameters.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    return {k: v for k, v in extra.items() if k in allowed}


# ----------------------------------------------------------------------
# The built-in registries.

#: Schedulers (the paper's evaluated systems).
SYSTEMS = Registry("system")
#: Fleet routing policies.
ROUTERS = Registry("router")
#: Arrival-trace generators.
TRACES = Registry("trace")
#: Model/deployment setups (Table 1).
MODELS = Registry("model setup")
#: Deterministic fault injections (chaos runs).
FAULTS = Registry("fault")

_COMPONENT_MODULES = (
    "repro.baselines",  # seven baseline schedulers
    "repro.core.scheduler",  # adaserve
    "repro.cluster.router",  # routing policies
    "repro.workloads.generator",  # single-shot trace kinds
    "repro.workloads.sessions",  # multi-turn session trace kinds
    "repro.analysis.harness",  # model setups
    "repro.chaos.faults",  # fault injections
)

_loaded = False
_loading = False


def load_components() -> None:
    """Import the built-in component modules once (idempotent).

    Registration happens at module import; this makes registry *queries*
    self-sufficient regardless of which entry point imported us first.
    Safe against import cycles: a module mid-import is simply returned
    from ``sys.modules`` as-is, and its registrations have either already
    run (they sit at class/function definition site) or will complete
    before any query from outside that module.  ``_loaded`` flips only
    after every import succeeded, so a failed import is retried (and the
    error re-raised) on the next query instead of leaving the registries
    silently half-populated; ``_loading`` guards re-entrant queries
    issued while the imports themselves are running.
    """
    global _loaded, _loading
    if _loaded or _loading:
        return
    _loading = True
    try:
        for module in _COMPONENT_MODULES:
            importlib.import_module(module)
        _loaded = True
    finally:
        _loading = False
