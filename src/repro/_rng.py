"""Fast, allocation-free deterministic pseudo-randomness.

The simulator draws millions of tiny next-token distributions per run, so we
cannot afford a ``numpy.random.Generator`` construction per draw.  Instead,
every random quantity in the synthetic model substrate is a pure function of
a 64-bit *context hash* computed with splitmix64-style mixing.  This gives:

- determinism: the same (seed, token sequence) always yields the same
  distribution, which is what makes tree verification consistent with
  sequence decoding;
- O(1) incremental updates: appending a token to a context is one mix step;
- speed: a handful of integer multiplications per uniform.

All functions operate on Python ints masked to 64 bits.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

# Multipliers from the splitmix64 / Murmur3 finalizer families.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_COMBINE = 0x2545F4914F6CDD1D

_INV_2_53 = 1.0 / (1 << 53)


def splitmix64(x: int) -> int:
    """Finalize a 64-bit value into a well-mixed 64-bit value."""
    x = (x + _GOLDEN) & MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & MASK64
    return x ^ (x >> 31)


def mix(h: int, v: int) -> int:
    """Combine a hash with a new value (e.g. append a token to a context)."""
    return splitmix64((h ^ (v * _COMBINE)) & MASK64)


def hash_seed(*parts: int) -> int:
    """Build a root hash from integer parts (seed, request id, ...)."""
    h = 0x853C49E6748FEA9B
    for p in parts:
        h = mix(h, p & MASK64)
    return h


def salted(salt: int) -> int:
    """Precompute the XOR mask ``(salt * _COMBINE) & MASK64`` for a salt.

    Hot loops (see :mod:`repro.model.stochastic_lm`) draw many uniforms
    per context with a fixed salt; since every context hash fits in 64
    bits, ``(h ^ (salt * _COMBINE)) & MASK64 == h ^ salted(salt)``, so
    the multiply-and-mask can be hoisted out of the loop without
    changing a single draw.
    """
    return (salt * _COMBINE) & MASK64


def uniform(h: int, salt: int) -> float:
    """One uniform in [0, 1) derived from (hash, salt)."""
    return (splitmix64((h ^ (salt * _COMBINE)) & MASK64) >> 11) * _INV_2_53


def uniforms(h: int, salt: int, n: int) -> list[float]:
    """``n`` independent uniforms in [0, 1) derived from (hash, salt)."""
    base = splitmix64((h ^ (salt * _COMBINE)) & MASK64)
    out = []
    x = base
    for _ in range(n):
        x = (x + _GOLDEN) & MASK64
        y = ((x ^ (x >> 30)) * _MIX1) & MASK64
        y = ((y ^ (y >> 27)) * _MIX2) & MASK64
        y ^= y >> 31
        out.append((y >> 11) * _INV_2_53)
    return out


def randint(h: int, salt: int, lo: int, hi: int) -> int:
    """One integer in [lo, hi) derived from (hash, salt)."""
    span = hi - lo
    if span <= 0:
        raise ValueError(f"empty range [{lo}, {hi})")
    return lo + splitmix64((h ^ (salt * _COMBINE)) & MASK64) % span


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic sub-seed from a base seed plus labels.

    Labels may be ints or strings (folded byte-by-byte), so seed
    derivation is stable across processes, platforms, and Python hash
    randomization.  Returns a non-negative 63-bit integer.
    """
    h = hash_seed(int(base_seed) & MASK64)
    for part in parts:
        if isinstance(part, int):
            h = mix(h, part & MASK64)
        else:
            for byte in str(part).encode("utf-8"):
                h = mix(h, byte)
    return h >> 1
