"""Exact per-request latency attribution from lifecycle traces.

Answers *why* a request was slow — the question the paper's SLO
attainment numbers pose but raw traces only let you eyeball in Perfetto.
:func:`decompose` partitions every request's end-to-end latency into
named components that **sum to the end-to-end latency by construction**
(the interval ``[arrival, end]`` is tiled by disjoint segments, then two
relabeling carve-outs move time between buckets without changing the
total), so the exactness property holds to float tolerance on every
scenario, chaos included:

================== ====================================================
component          meaning
================== ====================================================
queue_wait         waiting for admission / prefill budget, no fault or
                   preemption to blame (includes gaps between prefill
                   chunks while the request held no decode slot)
prefill_compute    first-pass prompt processing (engine prefill spans)
decode_compute     decode phase: prefill complete through last token
preempt_stall      everything a KV-pressure preemption cost: the stall
                   until re-admission plus the re-prefill redo compute
straggler_inflation the slowdown share ``(1 - 1/slow)`` of compute that
                   overlapped a straggler window on its replica
failover_redo      everything a replica crash cost the request: the
                   re-routing stall plus the re-prefill redo compute
prefix_miss_penalty the share of first-pass prefill a session request
                   re-computed because its prefix-cache lookup missed
================== ====================================================

The walk is a small state machine over the request's trace events in
stable time order: wait segments are labeled by the latest *reset
marker* (``preempt`` / ``failover``) seen, prefill spans are compute
(redo compute inherits the marker's bucket), and a prefill span whose
``prefilled`` payload reaches the prompt length flips the request into
the decode state.  Replica-local clocks can run slightly ahead of a
fleet-level marker (a crash lands between heap events), so segment
starts are clamped to the walk cursor — the tiling, and therefore the
exactness property, survives cross-replica clock skew.

Straggler windows are reconstructed per replica from
``straggler``/``straggler-end`` markers (a ``crash`` closes the window
early — the replacement engine is healthy; an open window closes at run
end).  The carve-out is overlap-based: a deterministic approximation of
the engine's per-iteration slowdown that never exceeds the segment it
relabels.  The prefix-miss penalty is counterfactual: for a session
request whose batch-entry lookup missed, the share of that pass's
prefill compute covering the previous turn's prompt+answer (the tokens
a hit would have skipped) is relabeled — sessionless and turn-0
requests are ineligible, so the component is zero when prefix caching
is off.

Everything downstream — per-category/per-replica aggregation tables,
the SLO-violation root-cause classifier, fleet-efficiency diagnostics,
and the strict-JSON export ``repro explain --baseline`` diffs — is a
pure function of the trace, so two same-seed runs export byte-identical
attributions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro import __version__
from repro.obs.trace import TraceCollector
from repro.serving.metrics import _percentile_sorted

#: Attribution components, in canonical order.  The order is also the
#: classifier's tie-break: when two components account for exactly the
#: same time, the earlier one is reported as dominant.
COMPONENTS = (
    "queue_wait",
    "prefill_compute",
    "decode_compute",
    "preempt_stall",
    "straggler_inflation",
    "failover_redo",
    "prefix_miss_penalty",
)

#: Layout version of the attribution export payload.
ATTRIB_SCHEMA_VERSION = 1

#: Components sum to end-to-end latency within this tolerance (the
#: construction is exact; the tolerance absorbs float summation error).
SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class RequestAttribution:
    """One request's latency decomposition."""

    rid: int
    category: str
    #: Replica that served the request's last compute (enqueue replica
    #: when it never computed; -1 when it never reached a replica).
    replica: int
    finished: bool
    #: SLO violated (unfinished requests count as violations, matching
    #: :class:`~repro.serving.metrics.RunMetrics`).
    violated: bool
    arrival_s: float
    #: End-to-end latency: ``finish - arrival`` for finished requests,
    #: ``run end - arrival`` for unfinished ones.
    e2e_s: float
    #: ``COMPONENTS``-keyed seconds; values sum to ``e2e_s``.
    components: dict
    #: The component accounting for the most time (ties break toward the
    #: earlier entry in ``COMPONENTS``).
    dominant: str


def _straggler_windows(collector: TraceCollector, sim_end: float) -> dict:
    """Per-replica ``[(start, end, slow), ...]`` degradation windows.

    A new ``straggler`` on an already-degraded replica replaces the slow
    factor (the fleet overwrites ``engine.slow_factor``), closing the
    previous window; ``crash`` closes one early because the replacement
    engine comes back healthy; anything still open closes at ``sim_end``.
    """
    windows: dict[int, list[tuple[float, float, float]]] = {}
    open_at: dict[int, tuple[float, float]] = {}  # replica -> (start, slow)

    def close(replica: int, end: float) -> None:
        started = open_at.pop(replica, None)
        if started is not None:
            start, slow = started
            if end > start:
                windows.setdefault(replica, []).append((start, end, slow))

    for e in collector.events:
        if e.kind == "straggler":
            close(e.replica, e.t)
            open_at[e.replica] = (e.t, e.data["slow"])
        elif e.kind in ("straggler-end", "crash"):
            close(e.replica, e.t)
    for replica in sorted(open_at):
        close(replica, sim_end)
    return windows


def _overlap(start: float, end: float, windows) -> float:
    """Length of ``[start, end]`` covered by straggler windows, weighted
    by each window's inflation share ``(1 - 1/slow)``."""
    carved = 0.0
    for ws, we, slow in windows:
        ov = min(end, we) - max(start, ws)
        if ov > 0:
            carved += ov * (1.0 - 1.0 / slow)
    return carved


def _decompose_one(
    req,
    events,
    sim_end: float,
    windows: dict,
    prev_turn,
) -> RequestAttribution:
    """State-machine walk of one request's events (see module docstring)."""
    comps = dict.fromkeys(COMPONENTS, 0.0)
    # Compute segments for the relabeling carve-outs:
    # (start, end, component, replica, pass_id, is_prefill).
    segments: list[tuple[float, float, str, int, int, bool]] = []
    # Passes whose batch-entry prefix lookup missed (pass 0 = before any
    # reset marker; each preempt/failover starts a new pass).
    miss_passes: set[int] = set()

    arrival = req.arrival_time
    finished = req.is_finished
    end = req.finish_time if finished else sim_end
    cur = arrival
    decoding = False
    redo: str | None = None  # None | "preempt" | "failover"
    replica = -1
    pass_id = 0

    def wait_bucket() -> str:
        if redo == "preempt":
            return "preempt_stall"
        if redo == "failover":
            return "failover_redo"
        return "queue_wait"

    ordered = sorted(events, key=lambda e: e.t)  # stable: emission order on ties
    if not finished and ordered:
        # Replica-local clocks may overrun the fleet horizon slightly;
        # extend the interval so the tiling (and the exactness property)
        # covers every event.
        last = max(e.t + (e.dur or 0.0) for e in ordered)
        end = max(end, last)
    e2e = end - arrival

    for e in ordered:
        kind = e.kind
        if kind == "prefill":
            seg_start = max(cur, e.t)
            seg_end = max(cur, e.t + e.dur)
            if seg_start > cur:
                bucket = "decode_compute" if decoding else wait_bucket()
                comps[bucket] += seg_start - cur
                if decoding:
                    segments.append((cur, seg_start, bucket, replica, pass_id, False))
            if seg_end > seg_start:
                bucket = "prefill_compute" if redo is None else wait_bucket()
                comps[bucket] += seg_end - seg_start
                segments.append((seg_start, seg_end, bucket, e.replica, pass_id, True))
            cur = seg_end
            replica = e.replica
            if e.data["prefilled"] == req.prompt_len:
                decoding = True
                redo = None
        elif kind in ("preempt", "failover"):
            t = max(cur, e.t)
            bucket = "decode_compute" if decoding else wait_bucket()
            if t > cur:
                comps[bucket] += t - cur
                if decoding:
                    segments.append((cur, t, bucket, replica, pass_id, False))
            cur = t
            decoding = False
            redo = "preempt" if kind == "preempt" else "failover"
            pass_id += 1
        elif kind == "prefix-miss":
            miss_passes.add(pass_id)
        elif kind == "finish":
            t = max(cur, e.t)
            bucket = "decode_compute" if decoding else wait_bucket()
            if t > cur:
                comps[bucket] += t - cur
                if decoding:
                    segments.append((cur, t, bucket, replica, pass_id, False))
            cur = t
        elif kind == "enqueue" and replica == -1:
            replica = e.replica
        # decode spans are coalesced duplicates of the walk's decode
        # state; prefix-hit/rollback change no component.

    if end > cur:
        bucket = "decode_compute" if decoding else wait_bucket()
        comps[bucket] += end - cur
        if decoding:
            segments.append((cur, end, bucket, replica, pass_id, False))

    # Carve 1: straggler inflation.  Relabel the slowdown share of every
    # compute segment overlapping a degradation window on its replica.
    remaining: list[float] = []
    for start, seg_end, bucket, seg_replica, _pid, _pre in segments:
        seg_windows = windows.get(seg_replica)
        carved = _overlap(start, seg_end, seg_windows) if seg_windows else 0.0
        if carved > 0.0:
            comps[bucket] -= carved
            comps["straggler_inflation"] += carved
        remaining.append(seg_end - start - carved)

    # Carve 2: prefix-miss penalty.  For each missed pass of an eligible
    # session request, relabel the share of the pass's (post-straggler)
    # prefill compute that a cache hit would have skipped.
    if miss_passes and prev_turn is not None and req.prompt_len > 1:
        cacheable = min(
            prev_turn.prompt_len + prev_turn.n_generated, req.prompt_len - 1
        )
        fraction = cacheable / req.prompt_len
        if fraction > 0.0:
            for i, (_s, _e, bucket, _r, pid, is_prefill) in enumerate(segments):
                if is_prefill and pid in miss_passes:
                    carved = remaining[i] * fraction
                    comps[bucket] -= carved
                    comps["prefix_miss_penalty"] += carved

    dominant = max(COMPONENTS, key=lambda c: comps[c])  # ties: earliest wins
    return RequestAttribution(
        rid=req.rid,
        category=req.category,
        replica=replica,
        finished=finished,
        violated=not req.attained,
        arrival_s=arrival,
        e2e_s=e2e,
        components=comps,
        dominant=dominant,
    )


def decompose(
    collector: TraceCollector, requests, sim_end: float
) -> list[RequestAttribution]:
    """Per-request latency decomposition for one traced run.

    ``requests`` are the run's final :class:`~repro.serving.request.
    Request` objects; ``sim_end`` bounds unfinished requests (use the
    report's ``sim_time_s``).  Results are ordered by rid.
    """
    windows = _straggler_windows(collector, sim_end)
    by_turn = {}
    for req in requests:
        if req.session_id is not None:
            by_turn[(req.session_id, req.turn_index)] = req
    out = []
    for req in sorted(requests, key=lambda r: r.rid):
        prev_turn = (
            by_turn.get((req.session_id, req.turn_index - 1))
            if req.session_id is not None and req.turn_index > 0
            else None
        )
        out.append(
            _decompose_one(
                req, collector.for_request(req.rid), sim_end, windows, prev_turn
            )
        )
    return out


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _group_stats(group: list[RequestAttribution]) -> dict:
    """Component totals + p50/p99 breakdowns for one non-empty group."""
    stats: dict = {}
    n = len(group)
    for comp in COMPONENTS:
        values = sorted(a.components[comp] for a in group)
        total = sum(values)
        stats[comp] = {
            "total_s": total,
            "mean_s": total / n,
            "p50_s": _percentile_sorted(values, 50.0),
            "p99_s": _percentile_sorted(values, 99.0),
        }
    e2e = sorted(a.e2e_s for a in group)
    return {
        "num_requests": n,
        "num_violated": sum(1 for a in group if a.violated),
        "components": stats,
        "e2e": {
            "total_s": sum(e2e),
            "mean_s": sum(e2e) / n,
            "p50_s": _percentile_sorted(e2e, 50.0),
            "p99_s": _percentile_sorted(e2e, 99.0),
        },
    }


def root_causes(attribs: list[RequestAttribution]) -> dict:
    """Violated-request count per dominant component (the classifier).

    Every SLO-violated request is labeled with its dominant latency
    component; components with zero violations are included so payload
    shapes stay stable across runs.
    """
    counts = dict.fromkeys(COMPONENTS, 0)
    for a in attribs:
        if a.violated:
            counts[a.dominant] += 1
    return counts


def fleet_efficiency(sampler) -> dict | None:
    """Fleet-efficiency diagnostics over one run's gauge series.

    Per replica: busy fraction (share of live samples with a non-empty
    running batch), a batch-size histogram over live samples, and
    *bubble* detection — samples where the replica sat live and
    completely idle (nothing running, nothing waiting) while another
    replica had a backlog, i.e. work existed that routing/draining left
    stranded.  ``None`` without a sampler or samples.
    """
    if sampler is None or not sampler.samples:
        return None
    per_replica: dict[int, dict] = {}
    bubble_windows: list[list[float]] = []
    open_bubble: float | None = None
    for sample in sampler.samples:
        backlog = sum(row[2] for row in sample.replicas)
        any_bubble = False
        for row in sample.replicas:
            idx, state, waiting, running = row[0], row[1], row[2], row[3]
            rec = per_replica.setdefault(
                idx,
                {"live_samples": 0, "busy_samples": 0, "bubble_samples": 0, "hist": {}},
            )
            if state != "live":
                continue
            rec["live_samples"] += 1
            hist = rec["hist"]
            hist[running] = hist.get(running, 0) + 1
            if running > 0:
                rec["busy_samples"] += 1
            elif waiting == 0 and backlog > 0:
                rec["bubble_samples"] += 1
                any_bubble = True
        if any_bubble:
            if open_bubble is None:
                open_bubble = sample.t
        elif open_bubble is not None:
            bubble_windows.append([open_bubble, sample.t])
            open_bubble = None
    if open_bubble is not None:
        bubble_windows.append([open_bubble, sampler.samples[-1].t])

    replicas = {}
    for idx in sorted(per_replica):
        rec = per_replica[idx]
        live = rec["live_samples"]
        replicas[str(idx)] = {
            "live_samples": live,
            "busy_fraction": rec["busy_samples"] / live if live else 0.0,
            "bubble_samples": rec["bubble_samples"],
            "bubble_fraction": rec["bubble_samples"] / live if live else 0.0,
            "batch_size_hist": {
                str(size): count for size, count in sorted(rec["hist"].items())
            },
        }
    return {
        "num_samples": len(sampler.samples),
        "sample_period_s": sampler.period_s,
        "replicas": replicas,
        "bubble_windows": bubble_windows,
    }


def attribution_to_dict(
    attribs: list[RequestAttribution],
    sim_time_s: float,
    sampler=None,
    chaos: dict | None = None,
) -> dict:
    """Self-describing attribution payload for one traced run.

    Everything ``repro explain`` prints or diffs lives here: fleet-wide
    component totals, per-category and per-replica tables with p50/p99
    breakdowns, the violation root-cause counts, one record per violated
    request, fleet-efficiency diagnostics (when a sampler ran), and —
    for chaos runs — the same attribution restricted to requests that
    arrived inside an incident window.
    """
    totals = {
        comp: sum(a.components[comp] for a in attribs) for comp in COMPONENTS
    }
    by_category: dict[str, list[RequestAttribution]] = {}
    by_replica: dict[int, list[RequestAttribution]] = {}
    for a in attribs:
        by_category.setdefault(a.category, []).append(a)
        by_replica.setdefault(a.replica, []).append(a)

    payload: dict = {
        "schema_version": ATTRIB_SCHEMA_VERSION,
        "repro_version": __version__,
        "components": list(COMPONENTS),
        "sim_time_s": sim_time_s,
        "num_requests": len(attribs),
        "num_violated": sum(1 for a in attribs if a.violated),
        "e2e_total_s": sum(a.e2e_s for a in attribs),
        "totals": totals,
        "per_category": {
            cat: _group_stats(by_category[cat]) for cat in sorted(by_category)
        },
        "per_replica": {
            str(idx): _group_stats(by_replica[idx]) for idx in sorted(by_replica)
        },
        "root_causes": root_causes(attribs),
        "violations": [
            {
                "rid": a.rid,
                "category": a.category,
                "replica": a.replica,
                "finished": a.finished,
                "dominant": a.dominant,
                "e2e_s": a.e2e_s,
                "components": {c: a.components[c] for c in COMPONENTS},
            }
            for a in attribs
            if a.violated
        ],
    }
    efficiency = fleet_efficiency(sampler)
    if efficiency is not None:
        payload["fleet"] = efficiency
    windows = (chaos or {}).get("incident_windows") or []
    if windows:
        incident = [
            a
            for a in attribs
            if any(start <= a.arrival_s <= end for start, end in windows)
        ]
        payload["incident"] = {
            "num_requests": len(incident),
            "num_violated": sum(1 for a in incident if a.violated),
            "totals": {
                comp: sum(a.components[comp] for a in incident)
                for comp in COMPONENTS
            },
            "root_causes": root_causes(incident),
        }
    return payload


def attribution_to_json(payload: dict, indent: int = 2) -> str:
    """Strict-JSON text of an attribution payload (byte-deterministic)."""
    return json.dumps(payload, indent=indent, sort_keys=True, allow_nan=False)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_SHORT = {
    "queue_wait": "queue",
    "prefill_compute": "prefill",
    "decode_compute": "decode",
    "preempt_stall": "preempt",
    "straggler_inflation": "straggler",
    "failover_redo": "failover",
    "prefix_miss_penalty": "prefix-miss",
}


def _table(rows: list[tuple], markdown: bool) -> str:
    header, body = rows[0], rows[1:]
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines += ["| " + " | ".join(row) + " |" for row in body]
        return "\n".join(lines)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip() for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_attribution(payload: dict, markdown: bool = False) -> str:
    """Human-readable attribution report (plain or GitHub markdown).

    Three sections: the per-category component table (seconds, with p99
    end-to-end latency), the violation root-cause table, and — when the
    payload carries fleet diagnostics — per-replica efficiency lines.
    """
    parts: list[str] = []

    rows: list[tuple] = [
        ("category", "n", "violated")
        + tuple(_SHORT[c] for c in COMPONENTS)
        + ("e2e p50", "e2e p99"),
    ]
    for cat, stats in payload["per_category"].items():
        rows.append(
            (cat, str(stats["num_requests"]), str(stats["num_violated"]))
            + tuple(
                f"{stats['components'][c]['total_s']:.3f}" for c in COMPONENTS
            )
            + (f"{stats['e2e']['p50_s']:.3f}", f"{stats['e2e']['p99_s']:.3f}")
        )
    parts.append(_table(rows, markdown))

    causes = payload["root_causes"]
    rows = [("root cause", "violations", "share")]
    violated = payload["num_violated"]
    for comp in COMPONENTS:
        count = causes[comp]
        if count == 0:
            continue
        rows.append(
            (comp, str(count), f"{count / violated * 100:.1f}%" if violated else "-")
        )
    if len(rows) == 1:
        parts.append("no SLO violations")
    else:
        parts.append(_table(rows, markdown))

    fleet = payload.get("fleet")
    if fleet is not None:
        lines = []
        for idx, rec in fleet["replicas"].items():
            hist = ", ".join(
                f"{size}x{count}" for size, count in rec["batch_size_hist"].items()
            )
            lines.append(
                f"- replica {idx}: busy {rec['busy_fraction'] * 100:.0f}% "
                f"of {rec['live_samples']} live samples, "
                f"{rec['bubble_samples']} bubble(s); batch sizes {hist or '-'}"
            )
        bubbles = fleet["bubble_windows"]
        if bubbles:
            spans = ", ".join(f"[{s:.1f}, {e:.1f}]" for s, e in bubbles)
            lines.append(f"- idle-while-backlogged windows: {spans}")
        parts.append("\n".join(lines))

    incident = payload.get("incident")
    if incident is not None:
        causes = incident["root_causes"]
        top = ", ".join(
            f"{comp}={causes[comp]}" for comp in COMPONENTS if causes[comp]
        )
        parts.append(
            f"incident windows: {incident['num_requests']} request(s), "
            f"{incident['num_violated']} violated"
            + (f" ({top})" if top else "")
        )

    return "\n\n".join(parts)
