"""Request-lifecycle trace collection.

A trace is an append-only list of typed :class:`TraceEvent` records on
the shared simulation clock, keyed by request id and replica index.  The
grammar (``kind`` values) covers the whole request lifecycle plus the
fleet-level control/chaos plane:

============== ===== ========================================================
kind           shape meaning
============== ===== ========================================================
enqueue        point request entered a scheduler queue (admission/failover)
prefill        span  one prefill pass processed ``tokens`` prompt tokens
decode         span  coalesced decode phase, first token through last commit
finish         point request completed generation
preempt        point KV-pressure eviction (``drop_kv`` says KV was dropped)
prefix-hit     point prefix-cache lookup matched ``tokens`` cached tokens
prefix-miss    point prefix-cache lookup matched nothing
prefix-rollback point unused batch-entry hit rolled back (request re-queued)
failover       point request evacuated from a crashed replica, re-routed
crash          point replica process died (``evacuated`` requests surrendered)
restart        point crashed replica came back cold
straggler      point replica degraded by ``slow``x (``straggler-end`` clears)
scale-up       point autoscaler added a warming replica
scale-down     point autoscaler started draining a replica
scale-delay    point chaos slowed the control plane by ``extra_s``
============== ===== ========================================================

Spans carry ``dur`` (seconds); point events leave it ``None``.  Decode
steps are deliberately coalesced into a single span per request (emitted
at finish, stamped ``decode_start .. last_token_time``): per-step events
would dominate trace size without adding information the iteration
counters do not already carry.

Collection is strictly passive — emitters read simulation state and
never mutate it — so an instrumented run produces byte-identical
simulation results to an uninstrumented one, and the trace itself is a
pure function of the run (deterministic for a fixed seed).

Fleet-scoped events (chaos markers, scale events) use
``replica=FLEET_TRACK``; exporters map that to a dedicated timeline
track.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sentinel replica index for fleet-scoped events (control plane, chaos
#: markers without a single victim).  Exporters render these on a
#: dedicated "fleet" track instead of a replica track.
FLEET_TRACK = -1


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One typed trace record (see the module grammar table)."""

    t: float
    kind: str
    replica: int
    rid: int | None = None
    #: Span length in seconds; ``None`` for point events.
    dur: float | None = None
    #: Small kind-specific payload (token counts, flags); ``None`` when empty.
    data: dict | None = None


class TraceCollector:
    """Append-only event sink shared by every emitter in one run.

    Query helpers (:meth:`of_kind`, :meth:`for_request`) are backed by
    lazily built kind/rid indexes: emitters append straight to
    ``events`` (the hot path stays a plain ``list.append``), and a query
    first folds any events appended since the last query into the index
    — so interleaved append/query sequences stay correct and attribution
    passes (one :meth:`for_request` per request; see
    :mod:`repro.obs.attrib`) cost O(events) total instead of
    O(requests x events).
    """

    __slots__ = ("events", "_by_kind", "_by_rid", "_indexed")

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        # Index state: events[:_indexed] have been folded in; anything
        # appended later is picked up by the next _sync() call.
        self._by_kind: dict[str, list[TraceEvent]] = {}
        self._by_rid: dict[int, list[TraceEvent]] = {}
        self._indexed = 0

    def __len__(self) -> int:
        return len(self.events)

    def tracer(self, replica: int) -> "ReplicaTracer":
        """A per-replica emitter bound to this collector."""
        return ReplicaTracer(self, replica)

    def event(
        self,
        t: float,
        kind: str,
        replica: int = FLEET_TRACK,
        rid: int | None = None,
        dur: float | None = None,
        data: dict | None = None,
    ) -> None:
        """Record one event directly (fleet-level emission sites)."""
        self.events.append(TraceEvent(t, kind, replica, rid, dur, data))

    def _sync(self) -> None:
        """Fold events appended since the last query into the indexes."""
        events = self.events
        for i in range(self._indexed, len(events)):
            e = events[i]
            self._by_kind.setdefault(e.kind, []).append(e)
            if e.rid is not None:
                self._by_rid.setdefault(e.rid, []).append(e)
        self._indexed = len(events)

    # -- query helpers (tests, summaries, attribution) -------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in emission order."""
        self._sync()
        return list(self._by_kind.get(kind, ()))

    def for_request(self, rid: int) -> list[TraceEvent]:
        """All events of one request, in emission order."""
        self._sync()
        return list(self._by_rid.get(rid, ()))

    def kinds(self) -> set[str]:
        """The set of kinds that actually occurred."""
        self._sync()
        return set(self._by_kind)


class ReplicaTracer:
    """Per-replica emitter installed as ``engine.obs``.

    The engine and scheduler base call these methods only behind
    ``if obs is not None`` guards, so disabled runs pay a single
    attribute check per site.  ``now`` is refreshed by the driving loop
    (:class:`~repro.cluster.replica.Replica.step` / the solo simulator)
    at each iteration boundary, giving emission sites that have no time
    parameter of their own (preemption, prefix lookups) the iteration
    start time.
    """

    __slots__ = ("_events", "replica", "now")

    def __init__(self, collector: TraceCollector, replica: int) -> None:
        self._events = collector.events
        self.replica = replica
        self.now = 0.0

    def _emit(
        self,
        t: float,
        kind: str,
        rid: int | None = None,
        dur: float | None = None,
        data: dict | None = None,
    ) -> None:
        self._events.append(TraceEvent(t, kind, self.replica, rid, dur, data))

    # -- lifecycle -------------------------------------------------------
    def enqueue(self, t: float, req) -> None:
        """Request entered this replica's waiting queue."""
        data = {"failover_count": req.failover_count} if req.failover_count else None
        self._emit(t, "enqueue", req.rid, data=data)

    def prefill(self, t: float, dur: float, req, tokens: int) -> None:
        """One prefill pass advanced ``req`` by ``tokens`` prompt tokens."""
        self._emit(t, "prefill", req.rid, dur, {"tokens": tokens, "prefilled": req.prefilled})

    def finish(self, req) -> None:
        """Request completed: emit its coalesced decode span + finish mark."""
        if req.decode_start is not None and req.last_token_time is not None:
            self._emit(
                req.decode_start,
                "decode",
                req.rid,
                req.last_token_time - req.decode_start,
                {"tokens": req.n_generated},
            )
        self._emit(req.finish_time, "finish", req.rid, data={"tokens": req.n_generated})

    def preempt(self, req, drop_kv: bool) -> None:
        """KV-pressure preemption at the current iteration boundary."""
        self._emit(self.now, "preempt", req.rid, data={"drop_kv": drop_kv})

    # -- prefix cache ----------------------------------------------------
    def prefix_lookup(self, req, tokens: int) -> None:
        """Outcome of a batch-entry prefix-cache match."""
        if tokens > 0:
            self._emit(self.now, "prefix-hit", req.rid, data={"tokens": tokens})
        else:
            self._emit(self.now, "prefix-miss", req.rid)

    def prefix_rollback(self, req, tokens: int) -> None:
        """A fresh hit went unused (request stayed queued)."""
        self._emit(self.now, "prefix-rollback", req.rid, data={"tokens": tokens})
