"""Deterministic periodic gauge sampling.

Between events nothing changes in a discrete-event simulation, so the
sampler never needs its own entries on the event heap (which would both
keep the run alive past its natural drain and perturb the autoscaler's
per-event evaluation cadence).  Instead the driving loops call
:meth:`GaugeSampler.catch_up` immediately *before* processing each event
at time ``T``: every pending tick ``<= T`` fires then, capturing the
state the fleet held just before ``T`` — exactly what an on-heap sampler
would have observed, with zero effect on the simulation.

Storage is a bounded ring with stride doubling: when the buffer reaches
capacity, every other sample is dropped and the effective period
doubles, so memory is O(capacity) regardless of run length while the
full run span stays covered.  All of it is deterministic, so two
fixed-seed runs produce identical sample sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

#: Field names of one per-replica gauge row, in tuple order.
REPLICA_FIELDS = (
    "replica",
    "state",
    "waiting",
    "running",
    "kv_used_blocks",
    "kv_total_blocks",
    "prefix_blocks",
)

#: Field names of the fleet-level gauge tuple, in tuple order.
FLEET_FIELDS = ("live", "warming", "draining", "failed", "total")


@dataclass(frozen=True, slots=True)
class Sample:
    """One gauge snapshot: fleet counters + per-replica rows."""

    t: float
    #: ``FLEET_FIELDS``-ordered counters (autoscaler/chaos state).
    fleet: tuple
    #: One ``REPLICA_FIELDS``-ordered tuple per replica, index order.
    replicas: tuple

    def row(self, replica: int) -> tuple | None:
        """This snapshot's gauge row for one replica index."""
        for row in self.replicas:
            if row[0] == replica:
                return row
        return None


class GaugeSampler:
    """Catch-up periodic sampler with stride-doubling ring storage."""

    def __init__(self, period_s: float = 0.5, capacity: int = 4096) -> None:
        if not period_s > 0:
            raise ValueError(f"sample period must be positive, got {period_s!r}")
        if capacity < 2:
            raise ValueError(f"sampler capacity must be >= 2, got {capacity}")
        self.period_s = float(period_s)
        #: The configured period (before any stride doubling), for export.
        self.requested_period_s = self.period_s
        self.capacity = capacity
        self.samples: list[Sample] = []
        self._next_t = 0.0
        self._capture: Callable[[float], Sample] | None = None

    def bind(self, capture: Callable[[float], Sample]) -> None:
        """Install the state-capture callback (one per run topology)."""
        self._capture = capture

    def catch_up(self, t: float) -> None:
        """Fire every pending tick ``<= t`` against the current state.

        Called by the driving loop just before it processes an event at
        ``t``; multiple ticks in a long inter-event gap all capture the
        same (unchanged) state, which is exactly correct for a
        discrete-event simulation.
        """
        if self._capture is None:
            return
        # Tolerance absorbs accumulated float error in the tick cursor so
        # a tick nominally equal to ``t`` is never skipped.
        while self._next_t <= t + 1e-12:
            self._take(self._next_t)
            self._next_t += self.period_s

    def _take(self, t: float) -> None:
        if len(self.samples) >= self.capacity:
            # Ring full: keep every other sample and double the stride.
            del self.samples[::2]
            self.period_s *= 2.0
        self.samples.append(self._capture(t))

    def __len__(self) -> int:
        return len(self.samples)
