"""Observability section of an experiment spec.

:class:`ObsSpec` configures *how a run is watched*, never *what it
computes*: collection is strictly passive (see :mod:`repro.obs.trace`),
so two runs of the same spec with different observability settings
produce byte-identical simulation results.  For that reason the section
is deliberately **excluded from the canonical spec payload and cache
key** (:meth:`~repro.analysis.spec.ExperimentSpec.to_dict` never emits
it): an observability knob can never fork the result cache, and every
pre-existing cache key and golden digest is untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ObsSpec:
    """How one run is observed (trace + periodic gauges + iteration log)."""

    #: Collect lifecycle trace events and periodic gauge samples.
    trace: bool = False
    #: Gauge sampling period in seconds (see :mod:`repro.obs.sampler`).
    sample_every_s: float = 0.5
    #: Attach a per-replica :class:`~repro.serving.telemetry.IterationLog`.
    iteration_log: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "trace", bool(self.trace))
        object.__setattr__(self, "sample_every_s", float(self.sample_every_s))
        object.__setattr__(self, "iteration_log", bool(self.iteration_log))
        if not math.isfinite(self.sample_every_s) or self.sample_every_s <= 0:
            raise ValueError(
                f"sample_every_s must be a positive finite number, "
                f"got {self.sample_every_s!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any observation is requested."""
        return self.trace or self.iteration_log
