"""Observability: request lifecycle traces, fleet gauges, exporters.

The subsystem is strictly passive and opt-in: nothing here mutates
simulation state, every emission site in the serving core is guarded by
an ``if obs is not None`` check (one attribute test when disabled), and
the :class:`~repro.obs.spec.ObsSpec` section never enters a spec's cache
key — so obs-free runs keep byte-identical golden digests and cache
keys, and observed runs produce byte-identical *results* to unobserved
ones (only the trace is extra).

Entry points:

- ``repro trace`` CLI: run one spec with tracing, export Perfetto +
  time-series JSON, print the slowest-requests table;
- ``repro explain`` CLI: exact per-request latency attribution, SLO
  root-cause tables, fleet-efficiency diagnostics, and ``--baseline``
  diffing of two attribution exports (:mod:`repro.obs.attrib`,
  :mod:`repro.obs.diff`);
- :func:`repro.analysis.runner.run_traced`: the same as a library call,
  returning ``(report, RunObserver)``.
"""

from repro.obs.attrib import (
    ATTRIB_SCHEMA_VERSION,
    COMPONENTS,
    RequestAttribution,
    attribution_to_dict,
    attribution_to_json,
    decompose,
    fleet_efficiency,
    format_attribution,
    root_causes,
)
from repro.obs.diff import (
    DEFAULT_ABS_THRESHOLD_S,
    DEFAULT_REL_THRESHOLD,
    diff_attributions,
    format_diff_table,
)
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    format_slowest_table,
    perfetto_json,
    perfetto_trace,
    series_to_dict,
    series_to_json,
    slowest_requests,
)
from repro.obs.observer import RunObserver
from repro.obs.sampler import FLEET_FIELDS, REPLICA_FIELDS, GaugeSampler, Sample
from repro.obs.spec import ObsSpec
from repro.obs.trace import FLEET_TRACK, ReplicaTracer, TraceCollector, TraceEvent

__all__ = [
    "ATTRIB_SCHEMA_VERSION",
    "COMPONENTS",
    "DEFAULT_ABS_THRESHOLD_S",
    "DEFAULT_REL_THRESHOLD",
    "FLEET_FIELDS",
    "FLEET_TRACK",
    "GaugeSampler",
    "ObsSpec",
    "REPLICA_FIELDS",
    "ReplicaTracer",
    "RequestAttribution",
    "RunObserver",
    "Sample",
    "TRACE_SCHEMA_VERSION",
    "TraceCollector",
    "TraceEvent",
    "attribution_to_dict",
    "attribution_to_json",
    "decompose",
    "diff_attributions",
    "fleet_efficiency",
    "format_attribution",
    "format_diff_table",
    "format_slowest_table",
    "perfetto_json",
    "perfetto_trace",
    "root_causes",
    "series_to_dict",
    "series_to_json",
    "slowest_requests",
]
