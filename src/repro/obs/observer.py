"""Run-scoped observability bundle.

:class:`RunObserver` owns everything one observed run collects — the
trace collector, the gauge sampler, and per-replica iteration logs — and
knows how to attach them to the simulation topology:

- :meth:`attach_engine` is called from the harness's replica factory for
  every engine built (initial fleet, autoscaled additions, and
  crash-replacement engines alike), installing a per-replica
  :class:`~repro.obs.trace.ReplicaTracer` as ``engine.obs`` and, when
  requested, an :class:`~repro.serving.telemetry.IterationLog` as
  ``engine.telemetry``.  Iteration logs are keyed by replica index so a
  crash-replacement engine appends to the same log its predecessor used;
- :meth:`bind_fleet` / :meth:`bind_solo` install the sampler's
  state-capture callback for the fleet and single-engine loops.

Attachment is the only side effect; collection itself never touches
simulation state, so observed runs stay byte-identical to unobserved
ones.
"""

from __future__ import annotations

from repro.obs.sampler import GaugeSampler, Sample
from repro.obs.spec import ObsSpec
from repro.obs.trace import TraceCollector
from repro.serving.telemetry import IterationLog


def _prefix_blocks(kv) -> int:
    """Shared prefix blocks currently cached (0 without prefix caching)."""
    return kv.prefix_stats().cached_blocks if kv.prefix_caching else 0


class RunObserver:
    """Collector + sampler + iteration logs for one observed run."""

    def __init__(
        self,
        trace: bool = True,
        sample_every_s: float = 0.5,
        iteration_log: bool = False,
        sample_capacity: int = 4096,
    ) -> None:
        self.collector: TraceCollector | None = TraceCollector() if trace else None
        self.sampler: GaugeSampler | None = (
            GaugeSampler(sample_every_s, sample_capacity) if trace else None
        )
        self.iteration_logs: dict[int, IterationLog] | None = (
            {} if iteration_log else None
        )

    @classmethod
    def from_spec(cls, spec: ObsSpec) -> "RunObserver":
        """Observer matching an :class:`~repro.obs.spec.ObsSpec` section."""
        return cls(
            trace=spec.trace,
            sample_every_s=spec.sample_every_s,
            iteration_log=spec.iteration_log,
        )

    # ------------------------------------------------------------------
    # Topology attachment
    # ------------------------------------------------------------------
    def attach_engine(self, engine, replica: int) -> None:
        """Instrument one freshly built engine for replica ``replica``."""
        if self.collector is not None:
            engine.obs = self.collector.tracer(replica)
        if self.iteration_logs is not None:
            engine.telemetry = self.iteration_logs.setdefault(replica, IterationLog())

    def bind_solo(self, scheduler, engine) -> None:
        """Sampler capture for the single-engine loop (one static replica)."""
        if self.sampler is None:
            return

        def capture(t: float) -> Sample:
            kv = engine.kv
            row = (
                0,
                "live",
                len(scheduler.waiting),
                len(scheduler.running),
                kv.used_blocks,
                kv.total_blocks,
                _prefix_blocks(kv),
            )
            return Sample(t, (1, 0, 0, 0, 1), (row,))

        self.sampler.bind(capture)

    def bind_fleet(self, fleet) -> None:
        """Sampler capture for the fleet loop (live replica list)."""
        if self.sampler is None:
            return

        def capture(t: float) -> Sample:
            rows = []
            live = warming = draining = failed = 0
            for r in fleet.replicas:
                if r.retired:
                    state = "retired"
                elif r.failed:
                    state = "failed"
                    failed += 1
                elif r.draining:
                    state = "draining"
                    draining += 1
                elif r.available_at > t:
                    state = "warming"
                    warming += 1
                else:
                    state = "live"
                    live += 1
                kv = r.engine.kv
                rows.append(
                    (
                        r.index,
                        state,
                        len(r.scheduler.waiting),
                        len(r.scheduler.running),
                        kv.used_blocks,
                        kv.total_blocks,
                        _prefix_blocks(kv),
                    )
                )
            return Sample(
                t, (live, warming, draining, failed, len(fleet.replicas)), tuple(rows)
            )

        self.sampler.bind(capture)
