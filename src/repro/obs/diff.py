"""Component-by-component diffing of attribution exports.

``repro explain --baseline OTHER.json`` compares the current run's
attribution payload (see :mod:`repro.obs.attrib`) against a previously
exported one: fleet-wide totals per latency component, the violation
count, and the root-cause histogram.  A component *regresses* when its
total grows by more than **both** thresholds — an absolute floor (so
microscopic scenarios can't trip percentage noise) and a relative
fraction of the baseline (so big scenarios can't hide real growth under
the floor); improvements use the same rule mirrored.  Requiring both is
what lets CI pin a same-seed rerun to a *zero* diff while a genuinely
changed scheduler still trips the gate.

The verdict drives the CLI exit code: any regression exits nonzero, so
the perf-smoke pipeline gains a where-did-the-time-go gate instead of a
bare iterations/s number.
"""

from __future__ import annotations

from repro.obs.attrib import COMPONENTS

#: A component regresses only past BOTH thresholds (see module docstring).
DEFAULT_REL_THRESHOLD = 0.05
DEFAULT_ABS_THRESHOLD_S = 0.05


def diff_attributions(
    baseline: dict,
    current: dict,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_threshold_s: float = DEFAULT_ABS_THRESHOLD_S,
) -> dict:
    """Compare two attribution payloads' fleet-wide component totals.

    Returns ``{"rows": [...], "regressions": [...], "improvements":
    [...], "violations": {...}}`` — one row per component with baseline/
    current/delta seconds and the relative delta (``None`` on a zero
    baseline), plus a violation-count row that flags **any** increase as
    a regression (a violated request is a binary outcome; thresholds
    are for seconds, not counts).
    """
    rows = []
    regressions = []
    improvements = []
    for comp in COMPONENTS:
        base = baseline["totals"].get(comp, 0.0)
        cur = current["totals"].get(comp, 0.0)
        delta = cur - base
        rel = delta / base if base > 0.0 else None
        worse = delta > abs_threshold_s and delta > rel_threshold * base
        better = -delta > abs_threshold_s and -delta > rel_threshold * base
        row = {
            "component": comp,
            "baseline_s": base,
            "current_s": cur,
            "delta_s": delta,
            "delta_rel": rel,
            "regression": worse,
            "improvement": better,
        }
        rows.append(row)
        if worse:
            regressions.append(comp)
        if better:
            improvements.append(comp)

    base_viol = baseline.get("num_violated", 0)
    cur_viol = current.get("num_violated", 0)
    violations = {
        "baseline": base_viol,
        "current": cur_viol,
        "delta": cur_viol - base_viol,
        "regression": cur_viol > base_viol,
    }
    if violations["regression"]:
        regressions.append("num_violated")

    return {
        "rows": rows,
        "violations": violations,
        "regressions": regressions,
        "improvements": improvements,
        "rel_threshold": rel_threshold,
        "abs_threshold_s": abs_threshold_s,
    }


def format_diff_table(diff: dict, markdown: bool = False) -> str:
    """Render a diff result as a table plus a one-line verdict."""
    header = ("component", "baseline_s", "current_s", "delta_s", "delta", "verdict")
    body = []
    for row in diff["rows"]:
        rel = row["delta_rel"]
        verdict = (
            "REGRESSION"
            if row["regression"]
            else "improvement"
            if row["improvement"]
            else "ok"
        )
        body.append(
            (
                row["component"],
                f"{row['baseline_s']:.3f}",
                f"{row['current_s']:.3f}",
                f"{row['delta_s']:+.3f}",
                f"{rel * 100:+.1f}%" if rel is not None else "-",
                verdict,
            )
        )
    viol = diff["violations"]
    body.append(
        (
            "num_violated",
            str(viol["baseline"]),
            str(viol["current"]),
            f"{viol['delta']:+d}",
            "-",
            "REGRESSION" if viol["regression"] else "ok",
        )
    )

    rows = [header, *body]
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines += ["| " + " | ".join(row) + " |" for row in body]
    else:
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            for row in rows
        ]
        lines.insert(1, "  ".join("-" * w for w in widths))

    if diff["regressions"]:
        verdict = "REGRESSION: " + ", ".join(diff["regressions"])
    elif diff["improvements"]:
        verdict = "improved: " + ", ".join(diff["improvements"])
    else:
        verdict = "no significant attribution change"
    return "\n".join(lines) + "\n\n" + verdict
