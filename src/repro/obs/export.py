"""Trace and time-series exporters.

Three output formats, all deterministic for a fixed-seed run (stable
event order, ``sort_keys`` JSON, no wall-clock or environment input):

- :func:`perfetto_json` — Chrome/Perfetto ``trace_event`` JSON.  Each
  replica is one process track (``pid`` = replica index) whose lanes
  (``tid``) are request ids: prefill/decode phases render as complete
  spans (``ph: "X"``), lifecycle points as instant events (``ph: "i"``),
  gauge samples as counter tracks (``ph: "C"``), and chaos incident
  windows as spans on a dedicated ``fleet`` track.  Load the file at
  ``https://ui.perfetto.dev`` or ``chrome://tracing``.
- :func:`series_to_json` — strict-JSON gauge time-series (plus optional
  per-replica iteration logs) under the same self-describing envelope
  conventions as :mod:`repro.analysis.export` (``schema_version`` +
  ``repro_version``, ``sort_keys``, ``allow_nan=False``).
- :func:`format_slowest_table` — plain/markdown top-N slowest-requests
  table for terminals and CI job summaries.
"""

from __future__ import annotations

import json
import math

from repro import __version__
from repro.obs.sampler import GaugeSampler, REPLICA_FIELDS
from repro.obs.trace import FLEET_TRACK, TraceCollector

#: Layout version of the obs export payloads (Perfetto ``otherData`` and
#: the time-series envelope).  Independent of the report schema in
#: :mod:`repro.analysis.export`: traces are diagnostics, not results.
TRACE_SCHEMA_VERSION = 1

#: Synthetic Perfetto process id for fleet-scoped tracks (chaos incident
#: windows, control-plane markers, fleet gauge counters).  Large so it
#: sorts after every real replica index.
FLEET_PID = 10_000


def _us(seconds: float) -> float:
    """Seconds -> trace_event microseconds (stable float rounding)."""
    return round(seconds * 1e6, 3)


def perfetto_trace(
    collector: TraceCollector,
    sampler: GaugeSampler | None = None,
    chaos: dict | None = None,
) -> dict:
    """Chrome ``trace_event`` payload (JSON-object format) for one run."""
    events: list[dict] = []
    replicas = {e.replica for e in collector.events if e.replica != FLEET_TRACK}
    if sampler is not None:
        for sample in sampler.samples:
            replicas.update(row[0] for row in sample.replicas)
    for idx in sorted(replicas):
        events.append(
            {
                "ph": "M",
                "pid": idx,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"replica {idx}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": idx,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": idx},
            }
        )
    events.append(
        {
            "ph": "M",
            "pid": FLEET_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "fleet"},
        }
    )
    events.append(
        {
            "ph": "M",
            "pid": FLEET_PID,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": FLEET_PID},
        }
    )

    # Lifecycle events.  ``sorted`` is stable, so same-time events keep
    # their (deterministic) emission order.
    for e in sorted(collector.events, key=lambda ev: ev.t):
        pid = FLEET_PID if e.replica == FLEET_TRACK else e.replica
        record: dict = {
            "pid": pid,
            "tid": e.rid if e.rid is not None else 0,
            "name": e.kind,
            "cat": "request" if e.rid is not None else "fleet",
            "ts": _us(e.t),
        }
        args: dict = {}
        if e.rid is not None:
            args["rid"] = e.rid
        if e.data:
            args.update(e.data)
        if args:
            record["args"] = args
        if e.dur is not None:
            record["ph"] = "X"
            record["dur"] = _us(e.dur)
        else:
            record["ph"] = "i"
            record["s"] = "t" if e.rid is not None else "p"
        events.append(record)

    # Gauge counters: one queue + one KV track per replica, fleet counts
    # on the fleet track.
    if sampler is not None:
        for sample in sampler.samples:
            ts = _us(sample.t)
            for row in sample.replicas:
                idx, _state, waiting, running, kv_used, _kv_total, prefix = row
                events.append(
                    {
                        "ph": "C",
                        "pid": idx,
                        "tid": 0,
                        "name": "queue",
                        "ts": ts,
                        "args": {"running": running, "waiting": waiting},
                    }
                )
                events.append(
                    {
                        "ph": "C",
                        "pid": idx,
                        "tid": 0,
                        "name": "kv_blocks",
                        "ts": ts,
                        "args": {"prefix": prefix, "used": kv_used},
                    }
                )
            live, warming, draining, failed, _total = sample.fleet
            events.append(
                {
                    "ph": "C",
                    "pid": FLEET_PID,
                    "tid": 0,
                    "name": "replicas",
                    "ts": ts,
                    "args": {
                        "draining": draining,
                        "failed": failed,
                        "live": live,
                        "warming": warming,
                    },
                }
            )

    # Chaos incident windows as spans on the fleet track.
    if chaos:
        for start, end in chaos.get("incident_windows", []):
            events.append(
                {
                    "ph": "X",
                    "pid": FLEET_PID,
                    "tid": 0,
                    "cat": "incident",
                    "name": "incident",
                    "ts": _us(start),
                    "dur": _us(end - start),
                }
            )

    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": f"repro {__version__}",
            "trace_schema": TRACE_SCHEMA_VERSION,
        },
        "traceEvents": events,
    }


def perfetto_json(
    collector: TraceCollector,
    sampler: GaugeSampler | None = None,
    chaos: dict | None = None,
    indent: int | None = None,
) -> str:
    """Strict-JSON text of :func:`perfetto_trace` (byte-deterministic)."""
    return json.dumps(
        perfetto_trace(collector, sampler, chaos),
        indent=indent,
        sort_keys=True,
        allow_nan=False,
    )


# ----------------------------------------------------------------------
# Gauge time-series export
# ----------------------------------------------------------------------
def series_to_dict(observer) -> dict:
    """Self-describing time-series payload for one observed run."""
    payload: dict = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "repro_version": __version__,
    }
    sampler = observer.sampler
    if sampler is not None:
        payload["sample_period_s"] = sampler.period_s
        payload["requested_period_s"] = sampler.requested_period_s
        payload["samples"] = [
            {
                "t": sample.t,
                "fleet": {
                    "live": sample.fleet[0],
                    "warming": sample.fleet[1],
                    "draining": sample.fleet[2],
                    "failed": sample.fleet[3],
                    "total": sample.fleet[4],
                },
                "replicas": [
                    dict(zip(REPLICA_FIELDS, row)) for row in sample.replicas
                ],
            }
            for sample in sampler.samples
        ]
    if observer.iteration_logs is not None:
        payload["iteration_logs"] = {
            str(index): [
                {
                    "time_s": rec.time_s,
                    "kind": rec.kind,
                    "batch_size": rec.batch_size,
                    "latency_s": rec.latency_s,
                    "tokens_committed": rec.tokens_committed,
                    "tokens_accepted": rec.tokens_accepted,
                    "depth": rec.depth,
                    "width": rec.width,
                    "budget_used": rec.budget_used,
                }
                for rec in log.records
            ]
            for index, log in sorted(observer.iteration_logs.items())
        }
    return payload


def series_to_json(observer, indent: int = 2) -> str:
    """Strict-JSON text of :func:`series_to_dict`."""
    return json.dumps(
        series_to_dict(observer), indent=indent, sort_keys=True, allow_nan=False
    )


# ----------------------------------------------------------------------
# Top-N slowest requests
# ----------------------------------------------------------------------
def slowest_requests(requests, n: int = 10) -> list:
    """The ``n`` slowest requests by end-to-end latency.

    Unfinished requests (lost horizons, mid-incident casualties) are the
    slowest of all and rank first, ordered by arrival; finished requests
    follow by descending ``finish - arrival``.  Ties break on rid.
    """

    def key(req):
        if req.is_finished:
            return (0, -(req.finish_time - req.arrival_time), req.rid)
        return (1, req.arrival_time, req.rid)

    ranked = sorted(requests, key=key, reverse=False)
    unfinished = [r for r in ranked if not r.is_finished]
    finished = [r for r in ranked if r.is_finished]
    return (unfinished + finished)[:n]


def _fmt(value: float, digits: int = 3) -> str:
    if value is None or math.isinf(value) or math.isnan(value):
        return "-"
    return f"{value:.{digits}f}"


def format_slowest_table(
    requests,
    n: int = 10,
    markdown: bool = False,
    attributions: dict | None = None,
) -> str:
    """Plain/markdown table of the top-N slowest requests.

    ``attributions`` optionally maps rid -> dominant latency component
    (see :func:`repro.obs.attrib.decompose`); when given, an
    "attribution" column says where each slow request's time went.
    """
    header = (
        "rid",
        "category",
        "status",
        "arrival_s",
        "ttft_s",
        "tpot_ms",
        "e2e_s",
        "tokens",
        "preempt",
        "failover",
    )
    if attributions is not None:
        header += ("attribution",)
    rows = []
    for req in slowest_requests(requests, n):
        e2e = req.finish_time - req.arrival_time if req.is_finished else None
        tpot = req.avg_tpot
        row = (
            str(req.rid),
            req.category,
            "finished" if req.is_finished else "unfinished",
            _fmt(req.arrival_time),
            _fmt(req.ttft),
            _fmt(None if math.isinf(tpot) else tpot * 1e3, 1),
            _fmt(e2e),
            str(req.n_generated),
            str(req.preempt_count),
            str(req.failover_count),
        )
        if attributions is not None:
            row += (attributions.get(req.rid, "-"),)
        rows.append(row)
    if not rows:
        return "(no requests)"
    widths = [
        max(len(header[i]), max(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines += ["| " + " | ".join(row) + " |" for row in rows]
        return "\n".join(lines)
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("  ".join("-" * w for w in widths))
    lines += [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    return "\n".join(lines)
