"""AdaServe's SLO-customized scheduler (Figure 6's request manager).

Each decoding iteration:

1. retire finished requests, run prefill for new arrivals (FCFS, same
   admission policy as the vLLM baseline so the comparison isolates the
   decode-phase policy);
2. read the active request count n and ask the adaptive controller for
   the beam shape (d, w) (Equations 8-9);
3. predict the iteration latency t_spec from the rooflines (draft beam at
   the chosen shape + verification at the full budget) and compute each
   request's requirement A(r);
4. run the speculate - select - verify pipeline (Algorithm 2);
5. price the iteration: measured draft-step shapes through the CUDA-graph
   model, actual verified token count through the target roofline, plus
   the *measured* CPU time of selection (accounted as scheduling time for
   the Figure 15 breakdown);
6. commit accepted tokens + corrections at the iteration's end time.
"""

from __future__ import annotations

import math

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.pipeline import BatchItem, run_iteration
from repro.core.selection import DEFAULT_N_MAX
from repro.hardware.profiler import HardwareProfiler
from repro.registry import SYSTEMS, Param
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import OutOfKVCache
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler

#: Prompt tokens co-batched into each verification pass (chunked prefill).
DEFAULT_PREFILL_CHUNK = 256


@SYSTEMS.register(
    "adaserve",
    params=[
        Param(
            "n_max", "int", default=DEFAULT_N_MAX, minimum=1,
            help="per-request token cap during SLO-customized selection",
        ),
        Param(
            "slack", "float", default=1.5, dest="budget_slack",
            minimum=1.0,
            help="latency slack used when profiling the verification budget",
        ),
        Param(
            "margin", "float", default=0.9, dest="slo_margin",
            minimum=0.0, maximum=1.0, exclusive_min=True,
            help="fraction of each SLO the requirement computation targets",
        ),
        Param(
            "chunk", "int", default=DEFAULT_PREFILL_CHUNK, dest="prefill_chunk", minimum=1,
            help="prompt tokens co-batched into each verification pass",
        ),
    ],
    summary="SLO-customized speculative decoding (the paper's system)",
)
class AdaServeScheduler(Scheduler):
    """SLO-customized speculative decoding over the serving substrate.

    Parameters
    ----------
    engine:
        The simulated engine (models + rooflines + KV).
    verify_budget:
        Token budget B for verification; ``None`` profiles the hardware
        (§3 footnote 1).
    draft_budget:
        Speculator per-step budget B2; ``None`` profiles the draft model.
    adaptive:
        Bounds/constants for the (d, w) controller.
    n_max:
        Per-request cap during SLO-customized selection.
    """

    name = "AdaServe"

    def __init__(
        self,
        engine: SimulatedEngine,
        verify_budget: int | None = None,
        draft_budget: int | None = None,
        adaptive: AdaptiveConfig | None = None,
        n_max: int = DEFAULT_N_MAX,
        budget_slack: float = 1.5,
        slo_margin: float = 0.9,
        prefill_chunk: int = DEFAULT_PREFILL_CHUNK,
        **kwargs,
    ) -> None:
        super().__init__(engine, **kwargs)
        if verify_budget is None:
            verify_budget = HardwareProfiler(
                engine.target_roofline, slack=budget_slack
            ).token_budget()
        if draft_budget is None:
            draft_budget = HardwareProfiler(
                engine.draft_roofline, slack=budget_slack
            ).token_budget()
        self.verify_budget = verify_budget
        self.draft_budget = draft_budget
        self.controller = AdaptiveController(verify_budget, draft_budget, adaptive)
        self.n_max = n_max
        if not 0.0 < slo_margin <= 1.0:
            raise ValueError("slo_margin must be in (0, 1]")
        #: Headroom factor on the TPOT target: planning against a slightly
        #: tighter SLO absorbs future prefill stalls the per-iteration
        #: requirement A(r) cannot anticipate.
        self.slo_margin = slo_margin
        if prefill_chunk < 1:
            raise ValueError("prefill_chunk must be >= 1")
        #: Prompt tokens folded into each verification pass.  The paper's
        #: implementation adapts FlashInfer's batched-prefill kernel "for
        #: both speculation steps and LLM verification" (SS6.1), i.e.
        #: prompts are processed alongside decode-phase work rather than
        #: in dedicated stall-inducing iterations.
        self.prefill_chunk = prefill_chunk

    # ------------------------------------------------------------------
    def _estimate_iteration_latency(self, n: int, d: int, w: int, context: int) -> float:
        """Predicted t_spec for the A(r) computation (no side effects)."""
        draft = self.engine.draft_roofline
        t = 0.0
        if d > 0:
            t += draft.forward_latency(n, context)
            for _ in range(d - 1):
                t += draft.forward_latency(
                    n * w, context, launch_overhead=self.engine.draft_graphs.replay_cost_s
                )
        t += self.engine.target_roofline.forward_latency(self.verify_budget, context)
        return t + self.engine.step_overhead_s

    def _margin_requirement(self, req, now: float, t_spec: float) -> float:
        """A(r) against a margin-tightened SLO (planning headroom)."""
        start = req.decode_start if req.decode_start is not None else now
        elapsed = max(0.0, now - start)
        return (elapsed + t_spec) / (req.tpot_slo * self.slo_margin) - req.n_generated

    def _take_prefill_chunk(self) -> list[tuple[Request, int]]:
        """Next chunk of the head-of-queue prompt, if KV admits it."""
        if not self.waiting or self._admit_capacity() <= 0:
            return []
        head = self.waiting[0]
        fresh_hit = self._lock_prefix(head)
        chunk = min(self.prefill_chunk, head.remaining_prompt)
        try:
            self.engine.kv.ensure(
                head.rid, head.prefilled + chunk + self.engine.kv.block_size
            )
        except OutOfKVCache:
            self._unlock_prefix(head, fresh_hit)
            return []
        return [(head, chunk)]

    # ------------------------------------------------------------------
    def step(self, now: float) -> float:
        self._retire_finished()

        # With nothing decoding, run dedicated prefill at full speed.
        if self.waiting and not self.running:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency

        batch = self.running[: self.max_batch_size]
        n = len(batch)
        if n == 0:
            raise RuntimeError("AdaServe scheduler stuck: no progress possible")

        d, w = self.controller.params(n)
        # KV must hold the deepest possible acceptance (+correction).
        batch = self._ensure_kv_for_decode(batch, extra_tokens=d + 2)
        n = len(batch)
        if n == 0:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency
            raise RuntimeError("AdaServe scheduler stuck: KV exhausted")

        # Chunked prefill co-batched into this iteration's verification.
        chunks = self._take_prefill_chunk()
        chunk_tokens = sum(t for _, t in chunks)

        context = self._last_decode_context
        t_spec = self._estimate_iteration_latency(n, d, w, context)
        t_spec += chunk_tokens * self.engine.target_roofline.compute_seconds_per_token

        # SLO-pressure adaptation.  A_cap(r) = min(A(r), d+1) means a
        # request needing more than d+1 tokens cannot attain its SLO at
        # this depth *by construction* (§4.3 step 2), and a budget of
        # B/n tokens per request bounds the expected acceptance the
        # selection can buy.  When the batch's typical requirement exceeds
        # what the load-driven (d, B) can deliver, deepen the beam and
        # widen the verification budget: verification latency grows
        # sub-linearly past the roofline knee, so trading it for accepted
        # tokens lowers per-token latency exactly when SLOs are tight.
        # The *forward-looking* per-iteration demand t_spec / t_TPOT is
        # what the SLO structurally requires regardless of accumulated
        # debt (debt-inflated A(r) would also trigger on hopeless
        # queue-lag, where extra speculation is wasted).
        d_max = self.controller.config.d_max
        demands = [
            min(t_spec / (r.tpot_slo * self.slo_margin), d_max + 1.0) for r in batch
        ]
        typical = sum(demands) / n
        max_demand = max(demands)
        budget = self.verify_budget
        if max_demand > 1.0:
            # Minimal depth whose greedy chain can *expect* to deliver the
            # demand: with per-step acceptance p, a depth-d chain expects
            # p(1-p^d)/(1-p) accepted draft tokens (+1 correction), so the
            # required d solves that geometric sum >= demand - 1.
            p = 0.75  # typical top-1 acceptance of the draft's best chain
            deficit = (max_demand - 1.0) * (1 - p) / p
            if deficit >= 1.0:
                d_floor = d_max  # demand beyond any finite chain
            else:
                d_floor = math.ceil(math.log(1.0 - deficit) / math.log(p))
            if d_floor > d:
                d = min(d_max, d_floor)
                t_spec = self._estimate_iteration_latency(n, d, w, context)
                t_spec += (
                    chunk_tokens * self.engine.target_roofline.compute_seconds_per_token
                )
        if typical > 1.0:
            # Budget pressure: ~2x the structural demand per request
            # (same reasoning), bounded at 3x the profiled budget.
            needed = int(n * 2.0 * typical)
            budget = max(budget, min(3 * self.verify_budget, needed))

        items = [
            BatchItem(
                root_token=0,
                root_ctx=req.ctx,
                requirement=self._margin_requirement(req, now, t_spec),
                center=req.predictability,
                max_tokens=req.remaining_tokens,
            )
            for req in batch
        ]
        result = run_iteration(
            self.engine.pair,
            items,
            depth=d,
            width=w,
            budget=budget,
            n_max=self.n_max,
        )

        # Price the iteration from what actually ran.  Scheduling (the
        # CPU-side selection) uses a deterministic cost model calibrated
        # against measured selection timings (see
        # benchmarks/test_fig15_breakdown.py) so simulated time is
        # reproducible run-to-run; the measured value remains available in
        # ``result.selection_cpu_s`` for the breakdown microbenchmark.
        sched_s = 20e-6 + 0.2e-6 * result.selection.candidates_scanned
        latency = self.engine.draft_cost(result.speculation.step_tokens, context)
        latency += self.engine.verify_cost(
            result.verify_tokens, context, extra_prefill_tokens=chunk_tokens
        )
        latency += self.engine.step_overhead_s
        latency += sched_s
        self.engine.account_scheduling(sched_s)
        self.engine.iterations += 1

        if self.engine.telemetry is not None:
            from repro.serving.telemetry import IterationRecord

            self.engine.telemetry.record(
                IterationRecord(
                    time_s=now,
                    kind="speculative",
                    batch_size=n,
                    latency_s=latency,
                    tokens_committed=result.total_generated,
                    depth=d,
                    width=w,
                    budget_used=result.selection.budget_used,
                    tokens_accepted=result.total_accepted,
                )
            )

        end = now + latency
        for req, outcome in zip(batch, result.outcomes):
            req.verify_steps += 1
            req.accepted_draft_tokens += len(outcome.accepted_tokens)
            req.commit_tokens(outcome.tokens_generated, outcome.new_ctx, end)
        for req, tokens in chunks:
            req.advance_prefill(tokens)
            if req.remaining_prompt == 0:
                # The chunk is always the head of the waiting queue.
                if self.waiting and self.waiting[0] is req:
                    self.waiting.popleft()
                else:  # pragma: no cover - defensive
                    self.waiting.remove(req)
                req.begin_decode(self.engine.root_ctx(req), end)
                self.running.append(req)
        obs = self.engine.obs
        if obs is not None:
            for req, tokens in chunks:
                obs.prefill(now, latency, req, tokens)
        return latency
