"""The speculate → select → verify pipeline (§4.3, one decoding iteration).

``run_iteration`` executes the model/algorithm side of one SLO-customized
speculative decoding iteration for a batch of requests:

1. speculation: beam-search candidate trees (draft model);
2. SLO-customized + throughput-optimized selection (CPU);
3. verification: the target model walks each selected tree, accepting a
   path and emitting a correction token.

It deliberately performs *no latency modeling* — it returns the token
counts the scheduler needs to price the iteration with the roofline model
(draft step shapes, verification tokens), plus the *measured* CPU time of
the selection phases.  Selection here is a real CPU implementation of
Algorithm 2, so the Figure 15 breakdown uses genuinely measured scheduling
overhead rather than a modeled constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.selection import DEFAULT_N_MAX, SelectionResult, select_tokens
from repro.core.speculation import SpeculationResult, speculate_batch
from repro.model.acceptance import verify_tree
from repro.model.pair import ModelPair


@dataclass(frozen=True)
class BatchItem:
    """One request's inputs to an iteration."""

    root_token: int
    root_ctx: int
    requirement: float  # A(r) for this iteration
    center: float | None = None  # per-request predictability
    max_tokens: int | None = None  # cap on accepted tokens (end of generation)


@dataclass(frozen=True)
class RequestOutcome:
    """One request's outputs from an iteration."""

    accepted_tokens: list[int]  # accepted draft tokens, in order
    correction_token: int
    new_ctx: int  # context including accepted tokens and the correction
    selected_tokens: int  # non-root nodes submitted for verification
    expected_accepted: float  # n_acc estimate used by selection

    @property
    def tokens_generated(self) -> int:
        """Committed tokens this iteration (accepted + correction)."""
        return len(self.accepted_tokens) + 1


@dataclass(frozen=True)
class IterationResult:
    """Everything the scheduler needs to cost and commit an iteration."""

    outcomes: list[RequestOutcome]
    speculation: SpeculationResult
    selection: SelectionResult
    verify_tokens: int  # total non-root tokens verified by the target
    selection_cpu_s: float  # measured wall-clock of the selection phases

    @property
    def total_generated(self) -> int:
        """Tokens committed across the batch."""
        return sum(o.tokens_generated for o in self.outcomes)

    @property
    def total_accepted(self) -> int:
        """Accepted draft tokens across the batch (excludes corrections)."""
        return sum(len(o.accepted_tokens) for o in self.outcomes)


def run_iteration(
    pair: ModelPair,
    items: list[BatchItem],
    depth: int,
    width: int,
    budget: int,
    n_max: int = DEFAULT_N_MAX,
) -> IterationResult:
    """Execute one SLO-customized speculative decoding iteration.

    Parameters
    ----------
    pair:
        The draft/target model pair.
    items:
        Batch inputs; order is preserved in the outcomes.
    depth, width:
        Beam shape from the adaptive controller.
    budget:
        Verification token budget B for this iteration.
    n_max:
        Per-request cap during SLO-customized selection.
    """
    if not items:
        raise ValueError("empty batch")

    # Step 1: speculation.
    roots = [(it.root_token, it.root_ctx) for it in items]
    centers = [it.center for it in items]
    spec = speculate_batch(pair, roots, depth, width, centers=centers)

    # Steps 2-3: selection (timed; this is the CPU-side scheduling work).
    t0 = time.perf_counter()  # repro: allow[RPD002] reason: measures real CPU cost of selection; never enters simulated time (schedulers price scheduling deterministically from candidates_scanned)
    selection = select_tokens(
        spec.trees,
        [it.requirement for it in items],
        budget=budget,
        n_max=n_max,
        depth=depth,
    )
    selection_cpu_s = time.perf_counter() - t0  # repro: allow[RPD002] reason: diagnostic microbenchmark field; reports derive scheduling time from the deterministic cost model

    # Step 4: verification.
    outcomes: list[RequestOutcome] = []
    verify_tokens = 0
    for item, sel in zip(items, selection.selections):
        draft_tree = sel.tree.extract_selected()
        verify_tokens += draft_tree.num_speculated
        accepted_nodes, correction, new_ctx = verify_tree(
            pair, draft_tree.root, center=item.center
        )
        accepted = [n.token_id for n in accepted_nodes]
        # Respect end-of-generation: do not overshoot max_tokens.
        if item.max_tokens is not None and len(accepted) + 1 > item.max_tokens:
            keep = max(0, item.max_tokens - 1)
            accepted = accepted[:keep]
            ctx = item.root_ctx
            for tok in accepted:
                ctx = pair.extend(ctx, tok)
            correction = pair.target_sample(ctx, item.center)
            new_ctx = pair.extend(ctx, correction)
        outcomes.append(
            RequestOutcome(
                accepted_tokens=accepted,
                correction_token=correction,
                new_ctx=new_ctx,
                selected_tokens=draft_tree.num_speculated,
                expected_accepted=sel.expected_accepted,
            )
        )

    return IterationResult(
        outcomes=outcomes,
        speculation=spec,
        selection=selection,
        verify_tokens=verify_tokens,
        selection_cpu_s=selection_cpu_s,
    )
