"""Sequoia-style static tree topologies (related-work extension, §7).

Sequoia (Chen et al.) sizes a *static* draft-tree topology to the hardware
budget with dynamic programming over expected acceptance, assuming the
acceptance probability of a draft child depends only on its *rank* in the
draft distribution (not on context).  Eagle-2 and AdaServe instead build
*context-aware* trees from live draft probabilities.  This module
implements the Sequoia side so the repository can compare the two designs
(benchmarks/test_ablation_static_tree.py):

- :func:`estimate_rank_probs` — profile the average acceptance of the
  draft's rank-i child over a context sample;
- :func:`optimal_static_topology` — DP for the expected-acceptance-optimal
  topology with a given node budget;
- :func:`instantiate_topology` — stamp the topology onto a request's
  context using the draft's live top-k tokens.

The DP: let q_1 >= q_2 >= ... be rank acceptance probabilities.  A node's
path weight is the product of its ancestors' rank probabilities; a tree's
value is the sum over nodes of path weights (the Theorem 3.1 objective
under the rank-only model).  ``F(n)`` is the best value of hanging ``n``
nodes under a node; splitting on how many nodes each child rank receives:

    F(n) = max over assignments {m_i} with sum(m_i) = n, m_i in {0} U [1..]
           of sum_i [m_i > 0] * q_i * (1 + F(m_i - 1))
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.tree import TokenTree
from repro.model.pair import ModelPair


@dataclass(frozen=True)
class Topology:
    """A static tree shape: per-child subtree shapes, in rank order."""

    children: tuple["Topology", ...] = ()

    @property
    def size(self) -> int:
        """Number of nodes in the subtree (excluding the virtual root)."""
        return sum(1 + c.size for c in self.children)

    @property
    def depth(self) -> int:
        """Depth of the subtree below this node."""
        if not self.children:
            return 0
        return 1 + max(c.depth for c in self.children)


def estimate_rank_probs(
    pair: ModelPair,
    sample_contexts: list[int],
    k: int,
    center: float | None = None,
) -> tuple[float, ...]:
    """Average true acceptance probability of the draft's rank-i child.

    This is Sequoia's offline profiling step: sample contexts, ask the
    draft for its top-k, and measure how often the target would emit each
    rank (here: its exact conditional probability).
    """
    if not sample_contexts:
        raise ValueError("need at least one sample context")
    if k < 1:
        raise ValueError("k must be >= 1")
    totals = [0.0] * k
    for ctx in sample_contexts:
        for i, (tok, _p) in enumerate(pair.draft_children(ctx, k, center)):
            totals[i] += pair.accept_prob(ctx, tok, center)
    n = len(sample_contexts)
    probs = tuple(t / n for t in totals)
    # Ranks are sorted by draft probability; enforce monotonicity to keep
    # the DP's assumptions valid under sampling noise.
    out = []
    prev = 1.0
    for p in probs:
        p = min(p, prev)
        out.append(p)
        prev = p
    return tuple(out)


def optimal_static_topology(
    rank_probs: tuple[float, ...], n_nodes: int
) -> tuple[Topology, float]:
    """DP for the best static topology with ``n_nodes`` nodes.

    Returns (topology, expected accepted tokens under the rank model).
    """
    if n_nodes < 0:
        raise ValueError("n_nodes must be non-negative")
    if not rank_probs or any(not 0.0 <= q <= 1.0 for q in rank_probs):
        raise ValueError("rank_probs must be probabilities")
    k = len(rank_probs)

    @lru_cache(maxsize=None)
    def best(n: int, rank: int) -> tuple[float, tuple]:
        """Best (value, child-shapes) giving ranks >= rank a total of n nodes."""
        if n == 0 or rank >= k:
            return 0.0, ()
        # Option A: rank gets nothing (and, by monotonicity, neither do
        # later ranks if this one is skipped — skipping a stronger child
        # for a weaker one is never optimal, so stop here).
        best_val, best_shape = 0.0, ()
        # Option B: rank gets m >= 1 nodes (itself + m-1 descendants).
        for m in range(1, n + 1):
            sub_val, sub_shape = best(m - 1, 0)
            rest_val, rest_shape = best(n - m, rank + 1)
            val = rank_probs[rank] * (1.0 + sub_val) + rest_val
            if val > best_val:
                best_val = val
                best_shape = ((m - 1, sub_shape), *rest_shape)
        return best_val, best_shape

    def build(shape: tuple) -> tuple[Topology, ...]:
        return tuple(Topology(children=build(sub)) for _n, sub in shape)

    value, shape = best(n_nodes, 0)
    topo = Topology(children=build(shape))
    assert topo.size == min(
        n_nodes, topo.size
    ), "DP must not allocate more nodes than budgeted"
    return topo, value


def instantiate_topology(
    pair: ModelPair,
    root_token: int,
    root_ctx: int,
    topology: Topology,
    center: float | None = None,
) -> TokenTree:
    """Stamp a static topology onto a request's live draft tokens.

    Child slot i of every node takes the draft's rank-i continuation at
    that node's context.
    """
    tree = TokenTree(root_token, root_ctx)

    def fill(parent, topo: Topology) -> None:
        if not topo.children:
            return
        ranked = pair.draft_children(parent.ctx_hash, len(topo.children), center)
        for (tok, prob), sub in zip(ranked, topo.children):
            child = tree.add_child(parent, tok, pair.extend(parent.ctx_hash, tok), prob)
            fill(child, sub)

    fill(tree.root, topology)
    return tree
