"""Algorithm 1: optimal token-tree construction with oracle probabilities.

This is the theoretically optimal (but impractical) algorithm of §4.1: it
assumes the *true* path probability f(v) of every node in the infinite
token tree T_inf(r) is known, and greedily grows each request's tree:

- Step 1: for each request, repeatedly insert the highest-f(v) node from
  its T_inf until the TPOT requirement A(r) is met; return INVALID if the
  budget runs out first.
- Step 2: spend any remaining budget on the globally highest-f(v) nodes
  across all requests' T_inf.

In the simulation we *can* play the oracle: the true f(v) is the product
of the target model's conditional probabilities (see
:func:`repro.model.acceptance.true_path_probability`).  The infinite tree
is explored lazily through a frontier heap — sound for greedy selection
because conditional probabilities < 1 make f strictly decreasing along
every path, so the best unselected node is always on the frontier.

Used by tests (optimality vs. brute force, INVALID ⇒ infeasible) and by
the decoupling ablation, which compares Algorithm 1's draft-step count
(B - n sequential decodes) against the speculate-then-select pipeline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.core.tree import TokenTree, TreeNode
from repro.model.pair import ModelPair

#: Marker returned when SLOs cannot be met within the budget.
INVALID = "INVALID"


@dataclass(frozen=True)
class OptimalResult:
    """Outcome of Algorithm 1."""

    trees: list[TokenTree]
    expected_accepted: list[float]  # n_acc per request (root's 1 + sum f(v))
    budget_used: int
    draft_decode_steps: int  # sequential draft decodes an implementation would need

    @property
    def total_expected(self) -> float:
        """Objective value: expected accepted tokens across the batch."""
        return sum(self.expected_accepted)


class _OracleFrontier:
    """Lazy frontier over T_inf(r) with true path probabilities."""

    __slots__ = ("_pair", "_center", "_heap", "_counter")

    def __init__(
        self,
        pair: ModelPair,
        tree: TokenTree,
        counter: "itertools.count",
        center: float | None,
    ) -> None:
        self._pair = pair
        self._center = center
        self._counter = counter
        self._heap: list[tuple[float, int, TreeNode, int, float]] = []
        self._push_children(tree, tree.root)

    def _push_children(self, tree: TokenTree, node: TreeNode) -> None:
        dist = self._pair.target_distribution(node.ctx_hash, self._center)
        for token_id, prob in zip(dist.token_ids, dist.probs):
            f = node.path_prob * prob
            heapq.heappush(
                self._heap, (-f, next(self._counter), node, token_id, prob)
            )

    def peek_prob(self) -> float:
        """f(v) of the best uninserted node (-inf if exhausted)."""
        return -self._heap[0][0] if self._heap else float("-inf")

    def pop_into(self, tree: TokenTree) -> TreeNode | None:
        """Insert the best node into the tree and expand its children."""
        if not self._heap:
            return None
        neg_f, _, parent, token_id, prob = heapq.heappop(self._heap)
        ctx = self._pair.extend(parent.ctx_hash, token_id)
        node = tree.add_child(parent, token_id, ctx, prob)
        node.selected = True
        self._push_children(tree, node)
        return node


def construct_optimal_trees(
    pair: ModelPair,
    roots: list[tuple[int, int]],
    requirements: list[float],
    budget: int,
    centers: list[float | None] | None = None,
    max_nodes_per_request: int = 512,
) -> OptimalResult | str:
    """Run Algorithm 1.

    Parameters
    ----------
    pair:
        Model pair; the *target* side is the oracle for f(v).
    roots:
        One ``(root_token, root_ctx)`` per request.
    requirements:
        A(r) per request (n_acc starts at 1.0 per the paper's pseudocode).
    budget:
        Total token budget B, roots included.
    centers:
        Optional per-request predictability centers.
    max_nodes_per_request:
        Safety valve against pathological requirements on the lazy
        infinite tree.

    Returns :data:`INVALID` if the SLOs cannot all be met within B,
    otherwise an :class:`OptimalResult` whose trees have all nodes marked
    selected.
    """
    n = len(roots)
    if len(requirements) != n:
        raise ValueError("requirements length must match roots")
    if budget < n:
        return INVALID
    if centers is None:
        centers = [None] * n

    counter = itertools.count()
    trees = [TokenTree(tok, ctx) for tok, ctx in roots]
    frontiers = [
        _OracleFrontier(pair, t, counter, c) for t, c in zip(trees, centers)
    ]
    n_acc = [1.0] * n
    remaining = budget - n
    decode_steps = 0

    # Step 1: satisfy each request's requirement.
    for i in range(n):
        added = 0
        while n_acc[i] < requirements[i]:
            if remaining <= 0:
                return INVALID
            if added >= max_nodes_per_request:
                return INVALID
            node = frontiers[i].pop_into(trees[i])
            if node is None:
                return INVALID
            n_acc[i] += node.path_prob
            remaining -= 1
            decode_steps += 1
            added += 1

    # Step 2: spend the remainder on globally-best nodes.
    global_heap: list[tuple[float, int, int]] = [
        (-frontiers[i].peek_prob(), next(counter), i)
        for i in range(n)
        if frontiers[i].peek_prob() > float("-inf")
    ]
    heapq.heapify(global_heap)
    while remaining > 0 and global_heap:
        neg_f, _, i = heapq.heappop(global_heap)
        live = frontiers[i].peek_prob()
        if live == float("-inf"):
            continue
        if -neg_f > live + 1e-18:
            heapq.heappush(global_heap, (-live, next(counter), i))
            continue
        if trees[i].num_speculated >= max_nodes_per_request:
            continue
        node = frontiers[i].pop_into(trees[i])
        if node is None:
            continue
        n_acc[i] += node.path_prob
        remaining -= 1
        decode_steps += 1
        heapq.heappush(global_heap, (-frontiers[i].peek_prob(), next(counter), i))

    return OptimalResult(
        trees=trees,
        expected_accepted=n_acc,
        budget_used=budget - remaining,
        draft_decode_steps=decode_steps,
    )
