"""AdaServe core: SLO-customized speculative decoding.

The paper's primary contribution: optimal token-tree construction
(Algorithm 1), the practical speculate-select-verify pipeline
(Algorithm 2), adaptive beam control (Equations 8-9) and the
SLO-customized scheduler that plugs into the serving substrate.
"""

from repro.core.adaptive import AdaptiveConfig, AdaptiveController, clip, grid_search_constants
from repro.core.optimal import INVALID, OptimalResult, construct_optimal_trees
from repro.core.pipeline import BatchItem, IterationResult, RequestOutcome, run_iteration
from repro.core.scheduler import AdaServeScheduler
from repro.core.selection import (
    DEFAULT_N_MAX,
    RequestSelection,
    SelectionResult,
    select_tokens,
)
from repro.core.slo import (
    SLOClass,
    average_tpot,
    capped_requirement,
    is_on_track,
    min_accept_requirement,
)
from repro.core.speculation import SpeculationResult, build_candidate_tree, speculate_batch
from repro.core.tree import TokenTree, TreeNode

__all__ = [
    "AdaServeScheduler",
    "AdaptiveConfig",
    "AdaptiveController",
    "BatchItem",
    "DEFAULT_N_MAX",
    "INVALID",
    "IterationResult",
    "OptimalResult",
    "RequestOutcome",
    "RequestSelection",
    "SLOClass",
    "SelectionResult",
    "SpeculationResult",
    "TokenTree",
    "TreeNode",
    "average_tpot",
    "build_candidate_tree",
    "capped_requirement",
    "clip",
    "construct_optimal_trees",
    "grid_search_constants",
    "is_on_track",
    "min_accept_requirement",
    "run_iteration",
    "select_tokens",
    "speculate_batch",
]
