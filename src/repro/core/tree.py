"""Draft token trees.

The central data structure of the paper: a rooted tree whose root is the
last committed token of a request and whose nodes are speculated
continuations.  Each node carries

- ``token_id``: the speculated token;
- ``ctx_hash``: the model-context hash of the sequence *including* this
  node's token (so verification can query the next-token distribution);
- ``draft_prob``: the draft model's conditional probability of this token
  given its parent's path (the surrogate for conditional acceptance);
- ``path_prob``: the product of ``draft_prob`` along the root path — the
  approximation of f(v) from Equation 7.

Trees are built by speculation (:mod:`repro.core.speculation`), pruned by
selection (:mod:`repro.core.selection`) and walked by verification
(:func:`repro.model.acceptance.verify_tree`).  ``extract_selected``
materializes the selected subtree as a standalone tree for verification.
"""

from __future__ import annotations

from typing import Callable, Iterator


class TreeNode:
    """One node of a draft token tree."""

    __slots__ = (
        "token_id",
        "ctx_hash",
        "draft_prob",
        "path_prob",
        "depth",
        "parent",
        "children",
        "selected",
    )

    def __init__(
        self,
        token_id: int,
        ctx_hash: int,
        draft_prob: float,
        path_prob: float,
        depth: int,
        parent: "TreeNode | None",
    ) -> None:
        self.token_id = token_id
        self.ctx_hash = ctx_hash
        self.draft_prob = draft_prob
        self.path_prob = path_prob
        self.depth = depth
        self.parent = parent
        self.children: list[TreeNode] = []
        self.selected = False

    @property
    def is_root(self) -> bool:
        """Whether this node is the tree root (the last committed token)."""
        return self.parent is None

    def path_tokens(self) -> list[int]:
        """Tokens from (excluding) the root down to this node."""
        toks: list[int] = []
        node: TreeNode | None = self
        while node is not None and not node.is_root:
            toks.append(node.token_id)
            node = node.parent
        toks.reverse()
        return toks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeNode(token={self.token_id}, depth={self.depth}, "
            f"path_prob={self.path_prob:.4f}, sel={self.selected})"
        )


class TokenTree:
    """A draft token tree rooted at the last committed token.

    Parameters
    ----------
    root_token:
        Token id of the root (purely informational; verification starts
        *after* the root).
    root_ctx:
        Context hash of the sequence up to and including the root token.
    """

    def __init__(self, root_token: int, root_ctx: int) -> None:
        self.root = TreeNode(root_token, root_ctx, 1.0, 1.0, 0, None)
        self._nodes: list[TreeNode] = [self.root]

    # -- construction ----------------------------------------------------
    def add_child(self, parent: TreeNode, token_id: int, ctx_hash: int, draft_prob: float) -> TreeNode:
        """Append a speculated token under ``parent``."""
        if not 0.0 <= draft_prob <= 1.0:
            raise ValueError(f"draft_prob out of range: {draft_prob}")
        node = TreeNode(
            token_id,
            ctx_hash,
            draft_prob,
            parent.path_prob * draft_prob,
            parent.depth + 1,
            parent,
        )
        parent.children.append(node)
        self._nodes.append(node)
        return node

    # -- inspection -------------------------------------------------------
    def nodes(self, include_root: bool = True) -> Iterator[TreeNode]:
        """All nodes in insertion order."""
        if include_root:
            return iter(self._nodes)
        return iter(self._nodes[1:])

    @property
    def size(self) -> int:
        """Number of nodes including the root."""
        return len(self._nodes)

    @property
    def num_speculated(self) -> int:
        """Number of speculated (non-root) tokens."""
        return len(self._nodes) - 1

    @property
    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        return max(n.depth for n in self._nodes)

    def num_selected(self, include_root: bool = False) -> int:
        """Number of nodes currently marked selected."""
        count = sum(1 for n in self._nodes[1:] if n.selected)
        return count + 1 if include_root else count

    def selected_path_prob_sum(self) -> float:
        """Sum of approximated path probabilities over selected nodes.

        This is the left-hand side of the relaxed TPOT constraint
        (Equation 5), excluding the root's guaranteed 1.
        """
        return sum(n.path_prob for n in self._nodes[1:] if n.selected)

    def clear_selection(self) -> None:
        """Unselect every node."""
        for n in self._nodes[1:]:
            n.selected = False

    def is_selection_connected(self) -> bool:
        """Whether every selected node's parent is selected (or the root).

        A valid draft tree for verification must be connected (Appendix B).
        """
        for n in self._nodes[1:]:
            if n.selected and n.parent is not None and not n.parent.is_root and not n.parent.selected:
                return False
        return True

    # -- extraction --------------------------------------------------------
    def extract_selected(self) -> "TokenTree":
        """Copy the selected subtree (plus root) into a standalone tree.

        Raises ``ValueError`` if the selection is not connected.
        """
        if not self.is_selection_connected():
            raise ValueError("selection is not connected; cannot extract a valid tree")
        out = TokenTree(self.root.token_id, self.root.ctx_hash)
        mapping: dict[int, TreeNode] = {id(self.root): out.root}
        # insertion order guarantees parents precede children
        for node in self._nodes[1:]:
            if not node.selected:
                continue
            parent_copy = mapping[id(node.parent)]
            mapping[id(node)] = out.add_child(
                parent_copy, node.token_id, node.ctx_hash, node.draft_prob
            )
        return out

    def map_nodes(self, fn: Callable[[TreeNode], None]) -> None:
        """Apply ``fn`` to every node (root included)."""
        for n in self._nodes:
            fn(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenTree(size={self.size}, depth={self.depth}, selected={self.num_selected()})"
