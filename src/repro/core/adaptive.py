"""Adaptive control of speculation depth and width (§5.2, Equations 8-9).

The beam shape (d, w) trades speculation accuracy against draft-model
overhead, and the right trade-off depends on load: with many active
requests the per-request share of the verification budget shrinks, so deep
or wide beams only produce tokens that selection will discard.  AdaServe
recomputes at the start of every iteration:

    d = clip(D_max, D_min, floor(B1 / (n + c1)) - 1)
    w = clip(W_max, 1,     floor(B2 / n) + c2)

where n is the number of active requests, B1 the verifier's per-step token
budget, B2 the speculator's per-step token budget, and c1/c2 tunable
constants (grid-searched; see :func:`grid_search_constants`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


def clip(upper: float, lower: float, value: float) -> float:
    """The paper's clip(max, min, x): constrain x into [lower, upper]."""
    if lower > upper:
        raise ValueError(f"empty clip range [{lower}, {upper}]")
    return max(lower, min(upper, value))


@dataclass(frozen=True)
class AdaptiveConfig:
    """Bounds and constants for the adaptive controller."""

    d_min: int = 1
    d_max: int = 8
    w_max: int = 4
    c1: float = 1.0
    c2: int = 0

    def __post_init__(self) -> None:
        if self.d_min < 0 or self.d_max < self.d_min:
            raise ValueError(f"invalid depth bounds: {self}")
        if self.w_max < 1:
            raise ValueError(f"invalid width bound: {self}")


class AdaptiveController:
    """Per-iteration (d, w) policy driven by the active request count.

    Parameters
    ----------
    verify_budget:
        B1 — tokens the verifier can process per decoding step (from
        hardware profiling).
    draft_budget:
        B2 — tokens the speculator can process per decoding step.
    config:
        Bounds and tunable constants.
    """

    def __init__(
        self,
        verify_budget: int,
        draft_budget: int,
        config: AdaptiveConfig | None = None,
    ) -> None:
        if verify_budget < 1 or draft_budget < 1:
            raise ValueError("budgets must be positive")
        self.verify_budget = verify_budget
        self.draft_budget = draft_budget
        self.config = config or AdaptiveConfig()

    def depth(self, n_active: int) -> int:
        """Equation 8: beam depth for the current load."""
        if n_active < 1:
            raise ValueError("n_active must be >= 1")
        cfg = self.config
        raw = self.verify_budget / (n_active + cfg.c1)
        return int(clip(cfg.d_max, cfg.d_min, int(raw) - 1))

    def width(self, n_active: int) -> int:
        """Equation 9: beam width for the current load."""
        if n_active < 1:
            raise ValueError("n_active must be >= 1")
        cfg = self.config
        raw = self.draft_budget // n_active + cfg.c2
        return int(clip(cfg.w_max, 1, raw))

    def params(self, n_active: int) -> tuple[int, int]:
        """(d, w) for the current load."""
        return self.depth(n_active), self.width(n_active)


def grid_search_constants(
    evaluate: Callable[[float, int], float],
    c1_grid: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    c2_grid: tuple[int, ...] = (-1, 0, 1, 2),
) -> tuple[float, int, float]:
    """Grid-search (c1, c2) maximizing an evaluation score.

    ``evaluate(c1, c2)`` should run a (short) simulation and return a
    score such as SLO attainment or goodput.  Returns the best
    ``(c1, c2, score)``.  This mirrors the paper's statement that c1 and
    c2 are "selected via grid search".
    """
    best: tuple[float, int, float] | None = None
    for c1 in c1_grid:
        for c2 in c2_grid:
            score = evaluate(c1, c2)
            if best is None or score > best[2]:
                best = (c1, c2, score)
    assert best is not None
    return best
