"""Speculation phase: beam-search construction of candidate token trees.

§4.3 step 1: starting from each request's root token, the draft model runs
``d`` decoding steps.  At each step every frontier node proposes its top
continuations; the ``w`` highest approximated-path-probability candidates
*across the whole frontier* survive and extend the candidate tree.  After
``d`` steps the tree has depth at most ``d`` with at most ``w`` nodes per
layer (the first layer is the root alone).

Theorem 4.1 guarantees that a beam of width B and depth D(T_opt) covers
the optimal tree, so the selection phases that follow never need tokens
the beam did not propose (given sufficient d and w).

Cost accounting: step 1 processes 1 token per request (the roots), steps
2..d process ``w`` tokens per request, all batched across requests.  The
returned :class:`SpeculationResult` carries these per-step token counts so
the scheduler can price the phase with the draft roofline + CUDA graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter

from repro.core.tree import TokenTree, TreeNode
from repro.model.pair import ModelPair
from repro.model.stochastic_lm import PREFETCH_MIN_BATCH

#: Sort key over (path_prob, node, token, prob) candidates (hot loop).
_BY_PATH_PROB = itemgetter(0)


def draft_chains(
    pair: ModelPair,
    starts: list[tuple[int, float | None]],
    k: int,
) -> list[list[int]]:
    """Greedy ``k``-token draft chains from each ``(ctx, center)`` start.

    Used by the chain-speculation baselines (vLLM-Spec, SmartSpec).
    Each chain is an independent pure function of its start context, so
    drafting all chains step-lockstep yields identical tokens to
    per-request loops while letting every step's draft distributions be
    generated in one vectorized pass (``DraftLM.prefetch``).
    """
    draft = pair.draft
    extend = pair.extend
    top_w = draft.top_w
    ctxs = [ctx for ctx, _ in starts]
    chains: list[list[int]] = [[] for _ in starts]
    prefetchable = len(starts) >= PREFETCH_MIN_BATCH
    for _ in range(k):
        if prefetchable:
            draft.prefetch(
                [(ctx, center) for ctx, (_, center) in zip(ctxs, starts)]
            )
        for i, (_, center) in enumerate(starts):
            tok, _prob = top_w(ctxs[i], 1, center)[0]
            chains[i].append(tok)
            ctxs[i] = extend(ctxs[i], tok)
    return chains


@dataclass(frozen=True)
class SpeculationResult:
    """Candidate trees for a batch plus the cost-relevant step shape."""

    trees: list[TokenTree]
    depth: int
    width: int
    step_tokens: tuple[int, ...]  # tokens processed by the draft at each step

    @property
    def total_draft_tokens(self) -> int:
        """Total tokens the draft model processed."""
        return sum(self.step_tokens)


def build_candidate_tree(
    pair: ModelPair,
    root_token: int,
    root_ctx: int,
    depth: int,
    width: int,
    center: float | None = None,
) -> TokenTree:
    """Beam-search a candidate tree for a single request.

    Parameters
    ----------
    pair:
        The draft/target model pair (only the draft is consulted).
    root_token, root_ctx:
        The request's last committed token and its context hash.
    depth, width:
        Beam depth d and width w.
    center:
        Optional per-request predictability center forwarded to the model.
    """
    if depth < 0 or width < 1:
        raise ValueError(f"invalid beam shape: depth={depth}, width={width}")
    tree = TokenTree(root_token, root_ctx)
    frontier: list[TreeNode] = [tree.root]
    draft_distribution = pair.draft.distribution
    extend = pair.extend
    for _ in range(depth):
        frontier = _advance_level(
            tree, frontier, draft_distribution, extend, width, center
        )
        if not frontier:
            break
    return tree


def _advance_level(
    tree: TokenTree,
    frontier: list[TreeNode],
    draft_distribution,
    extend,
    width: int,
    center: float | None,
) -> list[TreeNode]:
    """Expand one beam level; returns the new frontier.

    Hot loop: reads the draft distribution's (already sorted) tuples
    directly instead of materializing per-node (token, prob) pair lists.
    Shared by the per-request builder above and the level-synchronous
    batch builder below, so both construct identical trees.
    """
    candidates: list[tuple[float, TreeNode, int, float]] = []
    append = candidates.append
    for node in frontier:
        dist = draft_distribution(node.ctx_hash, center)
        path_prob = node.path_prob
        for token_id, prob in zip(dist.token_ids[:width], dist.probs[:width]):
            append((path_prob * prob, node, token_id, prob))
    if not candidates:
        return []
    candidates.sort(key=_BY_PATH_PROB, reverse=True)
    add_child = tree.add_child
    new_frontier: list[TreeNode] = []
    for _path_prob, parent, token_id, prob in candidates[:width]:
        new_frontier.append(
            add_child(parent, token_id, extend(parent.ctx_hash, token_id), prob)
        )
    return new_frontier


def speculate_batch(
    pair: ModelPair,
    roots: list[tuple[int, int]],
    depth: int,
    width: int,
    centers: list[float | None] | None = None,
) -> SpeculationResult:
    """Run the speculation phase for a whole batch.

    Parameters
    ----------
    roots:
        One ``(root_token, root_ctx)`` per request.
    depth, width:
        Beam shape shared by the batch (chosen by the adaptive controller).
    centers:
        Optional per-request predictability centers.

    Returns
    -------
    SpeculationResult with one candidate tree per request and the per-step
    batched token counts: step 1 processes ``len(roots)`` root tokens;
    each subsequent step processes ``width`` tokens per request.
    """
    n = len(roots)
    if centers is None:
        centers = [None] * n
    elif len(centers) != n:
        raise ValueError("centers length must match roots")
    if depth < 0 or width < 1:
        raise ValueError(f"invalid beam shape: depth={depth}, width={width}")
    # Level-synchronous construction: all trees advance one beam level at
    # a time so the whole batch's pending draft queries can be generated
    # in one vectorized pass (``DraftLM.prefetch``).  Each tree's own
    # expansion logic is byte-identical to ``build_candidate_tree`` (they
    # share ``_advance_level``); only the order in which the shared memo
    # is populated differs, which is unobservable.
    trees = [TokenTree(tok, ctx) for tok, ctx in roots]
    draft = pair.draft
    draft_distribution = draft.distribution
    extend = pair.extend
    frontiers = [[t.root] for t in trees]
    for _ in range(depth):
        if n * width >= PREFETCH_MIN_BATCH:
            pending = [
                (node.ctx_hash, centers[i])
                for i in range(n)
                for node in frontiers[i]
            ]
            if len(pending) >= PREFETCH_MIN_BATCH:
                draft.prefetch(pending)
        for i in range(n):
            if frontiers[i]:
                frontiers[i] = _advance_level(
                    trees[i], frontiers[i], draft_distribution, extend, width, centers[i]
                )
    if depth == 0 or n == 0:
        step_tokens: tuple[int, ...] = ()
    else:
        step_tokens = (n, *(n * width for _ in range(depth - 1)))
    return SpeculationResult(trees=trees, depth=depth, width=width, step_tokens=step_tokens)
