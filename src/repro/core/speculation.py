"""Speculation phase: beam-search construction of candidate token trees.

§4.3 step 1: starting from each request's root token, the draft model runs
``d`` decoding steps.  At each step every frontier node proposes its top
continuations; the ``w`` highest approximated-path-probability candidates
*across the whole frontier* survive and extend the candidate tree.  After
``d`` steps the tree has depth at most ``d`` with at most ``w`` nodes per
layer (the first layer is the root alone).

Theorem 4.1 guarantees that a beam of width B and depth D(T_opt) covers
the optimal tree, so the selection phases that follow never need tokens
the beam did not propose (given sufficient d and w).

Cost accounting: step 1 processes 1 token per request (the roots), steps
2..d process ``w`` tokens per request, all batched across requests.  The
returned :class:`SpeculationResult` carries these per-step token counts so
the scheduler can price the phase with the draft roofline + CUDA graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tree import TokenTree, TreeNode
from repro.model.pair import ModelPair


@dataclass(frozen=True)
class SpeculationResult:
    """Candidate trees for a batch plus the cost-relevant step shape."""

    trees: list[TokenTree]
    depth: int
    width: int
    step_tokens: tuple[int, ...]  # tokens processed by the draft at each step

    @property
    def total_draft_tokens(self) -> int:
        """Total tokens the draft model processed."""
        return sum(self.step_tokens)


def build_candidate_tree(
    pair: ModelPair,
    root_token: int,
    root_ctx: int,
    depth: int,
    width: int,
    center: float | None = None,
) -> TokenTree:
    """Beam-search a candidate tree for a single request.

    Parameters
    ----------
    pair:
        The draft/target model pair (only the draft is consulted).
    root_token, root_ctx:
        The request's last committed token and its context hash.
    depth, width:
        Beam depth d and width w.
    center:
        Optional per-request predictability center forwarded to the model.
    """
    if depth < 0 or width < 1:
        raise ValueError(f"invalid beam shape: depth={depth}, width={width}")
    tree = TokenTree(root_token, root_ctx)
    frontier: list[TreeNode] = [tree.root]
    for _ in range(depth):
        # Gather candidate children across the frontier.
        candidates: list[tuple[float, TreeNode, int, float]] = []
        for node in frontier:
            for token_id, prob in pair.draft_children(node.ctx_hash, width, center=center):
                candidates.append((node.path_prob * prob, node, token_id, prob))
        if not candidates:
            break
        candidates.sort(key=lambda c: c[0], reverse=True)
        new_frontier: list[TreeNode] = []
        for path_prob, parent, token_id, prob in candidates[:width]:
            ctx = pair.extend(parent.ctx_hash, token_id)
            new_frontier.append(tree.add_child(parent, token_id, ctx, prob))
        frontier = new_frontier
    return tree


def speculate_batch(
    pair: ModelPair,
    roots: list[tuple[int, int]],
    depth: int,
    width: int,
    centers: list[float | None] | None = None,
) -> SpeculationResult:
    """Run the speculation phase for a whole batch.

    Parameters
    ----------
    roots:
        One ``(root_token, root_ctx)`` per request.
    depth, width:
        Beam shape shared by the batch (chosen by the adaptive controller).
    centers:
        Optional per-request predictability centers.

    Returns
    -------
    SpeculationResult with one candidate tree per request and the per-step
    batched token counts: step 1 processes ``len(roots)`` root tokens;
    each subsequent step processes ``width`` tokens per request.
    """
    n = len(roots)
    if centers is None:
        centers = [None] * n
    elif len(centers) != n:
        raise ValueError("centers length must match roots")
    trees = [
        build_candidate_tree(pair, tok, ctx, depth, width, center=c)
        for (tok, ctx), c in zip(roots, centers)
    ]
    if depth == 0 or n == 0:
        step_tokens: tuple[int, ...] = ()
    else:
        step_tokens = (n,) + tuple(n * width for _ in range(depth - 1))
    return SpeculationResult(trees=trees, depth=depth, width=width, step_tokens=step_tokens)
