"""Selection phases of SLO-customized speculative decoding (Algorithm 2).

Given each request's candidate token tree (from the speculation phase) and
its per-iteration acceptance requirement A(r), selection decides which
candidate tokens the target model will verify, under the global token
budget B:

1. **SLO-customized selection** — requests are processed in descending
   order of A(r) (slowest first).  For each request, candidate nodes are
   taken greedily by approximated path probability until the cumulative
   sum reaches A_cap(r) = min(A(r), d+1), the per-request cap ``n_max``
   is hit, or the budget runs out.
2. **Throughput-optimized selection** — remaining budget is spent greedily
   on the globally highest approximated-path-probability candidates across
   all requests.

Both phases pick nodes from a *frontier heap* per tree: a node becomes a
candidate only once its parent is selected.  Because conditional draft
probabilities are < 1, a node's path probability is strictly below its
parent's, so frontier-greedy equals unrestricted-greedy while guaranteeing
the selected set is connected (Appendix B) by construction.

Budget semantics follow Algorithm 2: each request's root consumes one
budget token up front (the verifier always processes the root position),
then every selected node consumes one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.core.tree import TokenTree, TreeNode

#: Default cap on tokens added per request during the SLO phase (§4.3).
DEFAULT_N_MAX = 16


@dataclass
class RequestSelection:
    """Per-request outcome of the selection phases."""

    tree: TokenTree
    requirement: float  # A(r)
    capped_requirement: float  # A_cap(r)
    expected_accepted: float = 1.0  # n_acc: root's guaranteed token + sum of path probs
    slo_tokens: int = 0  # nodes added during the SLO phase
    throughput_tokens: int = 0  # nodes added during the throughput phase
    slo_satisfied: bool = False  # n_acc >= A_cap at the end of the SLO phase

    @property
    def num_selected(self) -> int:
        """Total selected (non-root) nodes."""
        return self.slo_tokens + self.throughput_tokens


@dataclass
class SelectionResult:
    """Batch-level outcome of the selection phases."""

    selections: list[RequestSelection]
    budget: int
    budget_used: int  # roots + selected nodes
    candidates_scanned: int = 0  # heap operations, for CPU-overhead modeling

    @property
    def budget_remaining(self) -> int:
        """Unspent verification budget."""
        return self.budget - self.budget_used

    @property
    def all_slo_satisfied(self) -> bool:
        """Whether every request reached its capped requirement."""
        return all(s.slo_satisfied for s in self.selections)


class _Frontier:
    """Max-heap of selectable nodes for one candidate tree.

    Nodes enter the frontier when their parent is selected; the heap is
    keyed on -path_prob with an insertion counter as tiebreak.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self, root: TreeNode, counter: "itertools.count") -> None:
        self._heap: list[tuple[float, int, TreeNode]] = []
        self._counter = counter
        for child in root.children:
            heapq.heappush(self._heap, (-child.path_prob, next(counter), child))

    def peek_prob(self) -> float:
        """Path probability of the best selectable node (-inf if empty)."""
        return -self._heap[0][0] if self._heap else float("-inf")

    def pop(self) -> TreeNode | None:
        """Select the best node, exposing its children."""
        if not self._heap:
            return None
        _, _, node = heapq.heappop(self._heap)
        node.selected = True
        for child in node.children:
            heapq.heappush(self._heap, (-child.path_prob, next(self._counter), child))
        return node

    def __len__(self) -> int:
        return len(self._heap)


def select_tokens(
    trees: list[TokenTree],
    requirements: list[float],
    budget: int,
    n_max: int = DEFAULT_N_MAX,
    depth: int | None = None,
) -> SelectionResult:
    """Run both selection phases over a batch (Algorithm 2, lines 9-23).

    Parameters
    ----------
    trees:
        Candidate token trees, one per request.  Selection flags are reset
        and then set in place; use ``extract_selected`` afterwards.
    requirements:
        A(r) per request (may be negative for requests ahead of schedule).
    budget:
        Total verification token budget B (includes one token per root).
    n_max:
        Per-request cap on nodes added during the SLO phase.
    depth:
        Beam depth d used to cap requirements; defaults to each tree's own
        depth.

    Returns the per-request selections; ``tree.extract_selected()`` yields
    the draft trees for verification.
    """
    n = len(trees)
    if len(requirements) != n:
        raise ValueError("requirements length must match trees")
    if budget < n:
        raise ValueError(f"budget {budget} cannot cover {n} roots")
    if n_max < 0:
        raise ValueError("n_max must be non-negative")

    counter = itertools.count()
    scanned = 0
    for tree in trees:
        tree.clear_selection()
    frontiers = [_Frontier(t.root, counter) for t in trees]
    selections = [
        RequestSelection(
            tree=t,
            requirement=req,
            capped_requirement=min(req, float((depth if depth is not None else t.depth) + 1)),
        )
        for t, req in zip(trees, requirements)
    ]
    remaining = budget - n  # each root consumes one budget token

    # ---- Phase 1: SLO-customized selection (descending A(r)). ----
    order = sorted(range(n), key=lambda i: selections[i].requirement, reverse=True)
    for i in order:
        sel = selections[i]
        frontier = frontiers[i]
        while (
            sel.expected_accepted < sel.capped_requirement
            and sel.slo_tokens < n_max
            and remaining > 0
        ):
            node = frontier.pop()
            scanned += 1
            if node is None:
                break
            sel.expected_accepted += node.path_prob
            sel.slo_tokens += 1
            remaining -= 1
        sel.slo_satisfied = sel.expected_accepted >= sel.capped_requirement

    # ---- Phase 2: throughput-optimized selection (global greedy). ----
    # A heap over tree indices keyed by each frontier's best node.
    global_heap: list[tuple[float, int, int]] = [
        (-frontiers[i].peek_prob(), next(counter), i)
        for i in range(n)
        if len(frontiers[i]) > 0
    ]
    heapq.heapify(global_heap)
    while remaining > 0 and global_heap:
        neg_prob, _, i = heapq.heappop(global_heap)
        frontier = frontiers[i]
        # The stored key may be stale; re-check against the live frontier.
        live = frontier.peek_prob()
        if live == float("-inf"):
            continue
        if -neg_prob > live + 1e-18:
            heapq.heappush(global_heap, (-live, next(counter), i))
            continue
        node = frontier.pop()
        scanned += 1
        if node is None:
            continue
        sel = selections[i]
        sel.expected_accepted += node.path_prob
        sel.throughput_tokens += 1
        remaining -= 1
        if len(frontier) > 0:
            heapq.heappush(global_heap, (-frontier.peek_prob(), next(counter), i))

    return SelectionResult(
        selections=selections,
        budget=budget,
        budget_used=budget - remaining,
        candidates_scanned=scanned,
    )
