"""SLO accounting: the TPOT constraint of §3.

For a request r in the current decoding iteration the paper defines

    A(r) = (l + t_spec) / t_TPOT - o

where l is the elapsed time since the request's first decoding step,
t_spec the (predicted) latency of the current iteration, t_TPOT the
request's per-token SLO, and o the tokens decoded so far.  A(r) is the
minimum number of tokens that must be accepted this iteration for the
request's *average* per-token latency to remain within its SLO after the
iteration.  Because at most d+1 tokens can be produced per iteration
(d accepted draft tokens on the deepest path plus the correction token),
the attainable target is capped at A_cap = min(A, d+1) (§4.3, step 2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SLOClass:
    """A named TPOT service level (one Table 2 row)."""

    name: str
    tpot_s: float

    def __post_init__(self) -> None:
        if self.tpot_s <= 0:
            raise ValueError(f"TPOT SLO must be positive: {self}")


def min_accept_requirement(
    elapsed_decode_s: float,
    tokens_decoded: int,
    iteration_latency_s: float,
    tpot_slo_s: float,
) -> float:
    """A(r): minimum accepted tokens needed in this iteration.

    Parameters
    ----------
    elapsed_decode_s:
        l — time since the request's first decoding step began.
    tokens_decoded:
        o — output tokens committed so far.
    iteration_latency_s:
        t_spec — predicted latency of the iteration being planned.
    tpot_slo_s:
        t_TPOT — the request's per-token SLO.

    Returns the (possibly negative) requirement; negative or zero means the
    request is ahead of its SLO and needs nothing this iteration.
    """
    if tpot_slo_s <= 0:
        raise ValueError("tpot_slo_s must be positive")
    if iteration_latency_s < 0 or elapsed_decode_s < 0:
        raise ValueError("latencies must be non-negative")
    return (elapsed_decode_s + iteration_latency_s) / tpot_slo_s - tokens_decoded


def capped_requirement(requirement: float, depth: int) -> float:
    """A_cap(r) = min(A(r), d + 1): attainable progress this iteration."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return min(requirement, float(depth + 1))


def is_on_track(
    elapsed_decode_s: float,
    tokens_decoded: int,
    tpot_slo_s: float,
) -> bool:
    """Whether the request's running average TPOT currently meets its SLO."""
    if tokens_decoded <= 0:
        return True
    return elapsed_decode_s / tokens_decoded <= tpot_slo_s


def average_tpot(decode_duration_s: float, tokens_decoded: int) -> float:
    """Average per-token latency over a request's decode phase."""
    if tokens_decoded <= 0:
        return float("inf")
    return decode_duration_s / tokens_decoded
