"""Vectorized batch generation of synthetic-model distributions.

The scalar generators in :mod:`repro.model.stochastic_lm` /
:mod:`repro.model.draft` produce one distribution per call from ~18
splitmix64 chains plus a handful of float operations.  When a caller
knows *many* contexts it is about to query — a beam-search level across
a whole batch, a decode batch's next-token samples — those chains can be
evaluated for every context at once with ``numpy`` uint64/float64
matrices (contexts x draws), collapsing thousands of interpreter
operations into a few dozen array dispatches.

**Bit-identity is the contract.**  Every vector statement here maps 1:1
onto a scalar statement of the reference implementation:

- uint64 adds/multiplies wrap modulo 2**64 exactly like the masked
  Python-int arithmetic;
- each float64 element is produced by the same IEEE operation sequence
  (multiply, divide, add in the same order) as the scalar path;
- running sums use ``cumsum`` (sequential, left-associated by
  definition), never ``np.sum`` (whose pairwise summation would differ);
- descending stable ``argsort`` of the negated probabilities matches
  ``sorted(..., reverse=True)`` tie-breaking.

The golden-equivalence suite (tests/test_golden_equivalence.py) and
``tests/test_batchgen.py`` pin this.  ``numpy`` is optional: when it is
unavailable the ``prefetch`` entry points are no-ops and callers fall
back to on-demand scalar generation.
"""

from __future__ import annotations

try:  # gated dependency: the scalar path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via AVAILABLE flag
    _np = None

from repro._rng import MASK64, _COMBINE, _GOLDEN, _INV_2_53, _MIX1, _MIX2
from repro.model.stochastic_lm import (
    _SHAPE_MASK,
    _TOKEN_MASKS,
    _TOP1_CEIL,
    _TOP1_FLOOR,
    PREFETCH_MIN_BATCH,
    TokenDistribution,
    _token_mask,
)

#: Whether the vectorized path can run at all.
AVAILABLE = _np is not None

#: Below this many pending generations the numpy fixed dispatch overhead
#: loses to the scalar loop (measured on small arrays).  Shared with the
#: call sites via repro.model.stochastic_lm.PREFETCH_MIN_BATCH so they
#: can skip building the items list entirely.
MIN_BATCH = PREFETCH_MIN_BATCH

if AVAILABLE:
    _U64 = _np.uint64
    _G = _U64(_GOLDEN)
    _M1 = _U64(_MIX1)
    _M2 = _U64(_MIX2)
    _S30 = _U64(30)
    _S27 = _U64(27)
    _S31 = _U64(31)
    _S11 = _U64(11)

#: Per-center XOR salts for the cache-key mix (few distinct centers).
_CENTER_SALTS: dict[float, int] = {}

#: Constant arrays reused across calls (token masks / tail weights /
#: noise steps are rebuilt thousands of times per run otherwise).
_MASKS_ARRAYS: dict[int, object] = {}
_STEPS_ARRAYS: dict[int, object] = {}
_WEIGHTS_ARRAYS: dict[tuple, object] = {}


def _center_salt(center: float) -> int:
    salt = _CENTER_SALTS.get(center)
    if salt is None:
        salt = _CENTER_SALTS[center] = (int(center * 1e6) * _COMBINE) & MASK64
    return salt


def _masks_array(k: int):
    arr = _MASKS_ARRAYS.get(k)
    if arr is None:
        if k > len(_TOKEN_MASKS):
            _token_mask(k - 1)
        arr = _MASKS_ARRAYS[k] = _np.array(_TOKEN_MASKS[:k], dtype=_np.uint64)
    return arr


def _steps_array(k: int):
    arr = _STEPS_ARRAYS.get(k)
    if arr is None:
        arr = _STEPS_ARRAYS[k] = _np.array(
            [(_GOLDEN * (j + 1)) & MASK64 for j in range(k)], dtype=_np.uint64
        )
    return arr


def _weights_array(weights: list[float]):
    key = tuple(weights)
    arr = _WEIGHTS_ARRAYS.get(key)
    if arr is None:
        arr = _WEIGHTS_ARRAYS[key] = _np.array(weights, dtype=_np.float64)
    return arr


def _splitmix(x):
    """Vector splitmix64 finalizer (matches repro._rng.splitmix64)."""
    x = x + _G
    x = (x ^ (x >> _S30)) * _M1
    x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


def _fin3(x):
    """The finalizer minus the golden-ratio add (uniforms() inner loop)."""
    x = (x ^ (x >> _S30)) * _M1
    x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


def _keys(C, items):
    """Cache keys for (ctx, center) items (scalar-path key derivation)."""
    has_none = False
    has_center = False
    salts_list = []
    for _, center in items:
        if center is None:
            has_none = True
            salts_list.append(0)
        else:
            has_center = True
            salts_list.append(_center_salt(center))
    if not has_center:
        return C
    salts = _np.array(salts_list, dtype=_np.uint64)
    with _np.errstate(over="ignore"):
        K = _splitmix(C ^ salts)
    if not has_none:
        return K
    none_mask = _np.array([center is None for _, center in items], dtype=bool)
    return _np.where(none_mask, C, K)


def _generate_rows(lm, C, centers):
    """Vectorized ``StochasticLM._generate`` over contexts ``C``.

    ``centers`` is a float64 array (per-element predictability).  Returns
    ``(P, ids_mat, dup)``: per-row probabilities and token ids, plus a mask of
    rows whose fast-path draws collided (the caller re-draws those ids
    with the scalar skip-duplicates loop — probabilities are unaffected).
    """
    k = lm.branching
    with _np.errstate(over="ignore"):
        u = (_splitmix(C ^ _U64(_SHAPE_MASK)) >> _S11) * _INV_2_53
        top1 = centers + lm.spread * (2.0 * u - 1.0)
        top1 = _np.where(top1 < _TOP1_FLOOR, _TOP1_FLOOR, top1)
        top1 = _np.where(top1 > _TOP1_CEIL, _TOP1_CEIL, top1)
        tail_mass = 1.0 - top1
        weights = _weights_array(lm._tail_weights)
        P = _np.empty((C.shape[0], k), dtype=_np.float64)
        P[:, 0] = top1
        P[:, 1:] = tail_mass[:, None] * weights[None, :]
        masks = _masks_array(k)
        ids_mat = _splitmix(C[:, None] ^ masks[None, :]) % _U64(lm._n_regular)
        ordered = _np.sort(ids_mat, axis=1)
        dup = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
    return P, ids_mat, dup


def _noise_rows(C, k):
    """Vectorized ``uniforms(ctx, _SALT_NOISE, k)`` over contexts ``C``.

    The scalar loop's chain is ``x_j = base + (j+1) * GOLDEN`` (mod 2**64)
    finalized without the extra golden add, which vectorizes as one outer
    add.
    """
    from repro.model.draft import _NOISE_MASK

    with _np.errstate(over="ignore"):
        base = _splitmix(C ^ _U64(_NOISE_MASK))
        return (_fin3(base[:, None] + _steps_array(k)[None, :]) >> _S11) * _INV_2_53


def _effective_centers(lm, items):
    """Per-item predictability (model default where center is None)."""
    default = lm.predictability
    return _np.array(
        [default if center is None else center for _, center in items],
        dtype=_np.float64,
    )


def _select_missing(cache, keys_list):
    """Indices of keys absent from ``cache``."""
    return [i for i, key in enumerate(keys_list) if key not in cache]


def prefetch_target(lm, items) -> None:
    """Warm ``lm``'s memo for many ``(ctx, center)`` queries (exact)."""
    if _np is None or len(items) < MIN_BATCH:
        return
    cache = lm._cache
    C = _np.array([ctx for ctx, _ in items], dtype=_np.uint64)
    keys_list = _keys(C, items).tolist()
    missing = _select_missing(cache, keys_list)
    if len(missing) < MIN_BATCH:
        return
    idx = _np.array(missing, dtype=_np.intp)
    sub_items = [items[i] for i in missing]
    P, ids_mat, dup = _generate_rows(lm, C[idx], _effective_centers(lm, sub_items))
    if dup.any():
        for row in _np.nonzero(dup)[0]:
            ids_mat[row] = lm._draw_token_ids(sub_items[int(row)][0])
    ids_rows = ids_mat.tolist()
    probs_rows = P.tolist()
    cap = lm._cache_cap
    new = TokenDistribution.__new__
    for j, i in enumerate(missing):
        key = keys_list[i]
        if key in cache:
            continue  # duplicate ctx within the batch
        if len(cache) >= cap:
            cache.clear()
        dist = new(TokenDistribution)
        dist.token_ids = tuple(ids_rows[j])
        dist.probs = tuple(probs_rows[j])
        cache[key] = dist


def prefetch_draft(draft, items) -> None:
    """Warm the draft's (and target's) memos for many queries (exact)."""
    if _np is None or len(items) < MIN_BATCH:
        return
    lm = draft.target
    a = draft.alignment
    k = lm.branching
    dcache = draft._cache
    dcap = draft._cache_cap
    tcache = lm._cache
    tcap = lm._cache_cap
    C = _np.array([ctx for ctx, _ in items], dtype=_np.uint64)
    keys_list = _keys(C, items).tolist()
    missing = _select_missing(dcache, keys_list)
    if len(missing) < MIN_BATCH:
        return
    idx = _np.array(missing, dtype=_np.intp)
    sub = C[idx]
    sub_items = [items[i] for i in missing]
    P, ids_mat, dup = _generate_rows(lm, sub, _effective_centers(lm, sub_items))
    if dup.any():
        for row in _np.nonzero(dup)[0]:
            ids_mat[row] = lm._draw_token_ids(sub_items[int(row)][0])
    tgt_ids_rows = ids_mat.tolist()
    tgt_probs_rows = P.tolist()
    # Materialize (and memoize) the target rows too: verification samples
    # the target at exactly these contexts later.
    new = TokenDistribution.__new__
    tgt_dists = []
    for j, i in enumerate(missing):
        key = keys_list[i]
        dist = tcache.get(key)
        if dist is None:
            if len(tcache) >= tcap:
                tcache.clear()
            dist = new(TokenDistribution)
            dist.token_ids = tuple(tgt_ids_rows[j])
            dist.probs = tuple(tgt_probs_rows[j])
            tcache[key] = dist
        tgt_dists.append(dist)
    if a >= 1.0:
        for j, i in enumerate(missing):
            key = keys_list[i]
            if key not in dcache:
                if len(dcache) >= dcap:
                    dcache.clear()
                dcache[key] = tgt_dists[j]
        return
    with _np.errstate(over="ignore"):
        N = _noise_rows(sub, k)
        noise_total = N.cumsum(axis=1)[:, -1]
        mixed = a * P + (1.0 - a) * (N / noise_total[:, None])
        total = mixed.cumsum(axis=1)[:, -1]
        norm = mixed / total[:, None]
        order = _np.argsort(-norm, axis=1, kind="stable")
        ids_sorted = _np.take_along_axis(ids_mat, order, axis=1)
        probs_sorted = _np.take_along_axis(norm, order, axis=1)
    ids_rows = ids_sorted.tolist()
    probs_rows = probs_sorted.tolist()
    for j, i in enumerate(missing):
        key = keys_list[i]
        if key in dcache:
            continue
        if len(dcache) >= dcap:
            dcache.clear()
        dist = new(TokenDistribution)
        dist.token_ids = tuple(ids_rows[j])
        dist.probs = tuple(probs_rows[j])
        dcache[key] = dist
