"""Verification semantics: how the target accepts speculated tokens.

Implements the lossless acceptance rules used throughout the paper:

- **Sequence verification** (vLLM-Spec-style): the draft proposes a chain
  of tokens; the target accepts the longest prefix matching its own
  emissions and contributes one correction token after the first mismatch
  (or after the full chain) — so every verification step yields at least
  one new token, which is why Algorithms 1/2 initialize ``n_acc = 1``.
- **Tree verification** (SpecInfer/Sequoia-style): the draft proposes a
  token tree; the target walks from the root, at each node emitting its
  token and descending into the matching child if present.  The accepted
  path plus the correction token is returned.

Both functions are generic over any node object exposing ``token_id``,
``ctx_hash`` and ``children`` (an iterable of nodes), so they serve the
core library's :class:`~repro.core.tree.TokenTree` without a circular
import.

Also provides the Theorem 3.1 quantities: the true path probability
``f(v)`` of a node and the expected number of accepted tokens of a tree,
used by tests and by the optimal-construction ablation.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

from repro.model.pair import ModelPair


class VerifiableNode(Protocol):
    """Structural interface for tree verification."""

    token_id: int
    ctx_hash: int

    @property
    def children(self) -> Iterable["VerifiableNode"]: ...


def verify_sequence(
    pair: ModelPair,
    root_ctx: int,
    draft_tokens: Sequence[int],
    center: float | None = None,
) -> tuple[int, int, int]:
    """Verify a draft *chain* against the target.

    Parameters
    ----------
    pair:
        The coupled models.
    root_ctx:
        Context hash of the sequence so far (up to and including the last
        committed token).
    draft_tokens:
        Speculated continuation, in order.

    Returns
    -------
    (n_accepted, correction_token, new_ctx):
        ``n_accepted`` draft tokens were accepted; ``correction_token`` is
        the target's emission after the accepted prefix (always produced,
        so the step generates ``n_accepted + 1`` tokens); ``new_ctx`` is
        the context hash including the correction token.
    """
    ctx = root_ctx
    accepted = 0
    for tok in draft_tokens:
        emitted = pair.target_sample(ctx, center)
        if emitted != tok:
            return accepted, emitted, pair.extend(ctx, emitted)
        accepted += 1
        ctx = pair.extend(ctx, tok)
    emitted = pair.target_sample(ctx, center)
    return accepted, emitted, pair.extend(ctx, emitted)


def verify_tree(
    pair: ModelPair, root: VerifiableNode, center: float | None = None
) -> tuple[list[VerifiableNode], int, int]:
    """Verify a draft token *tree* against the target.

    The walk starts at ``root`` (the last committed token).  At each node
    the target emits a token; if a child carries that token the walk
    descends, otherwise it stops and the emission becomes the correction
    token.

    Returns
    -------
    (accepted_nodes, correction_token, new_ctx):
        ``accepted_nodes`` is the accepted root-to-leaf path *excluding*
        the root; ``new_ctx`` includes the correction token.
    """
    node = root
    accepted: list[VerifiableNode] = []
    while True:
        emitted = pair.target_sample(node.ctx_hash, center)
        nxt = None
        for child in node.children:
            if child.token_id == emitted:
                nxt = child
                break
        if nxt is None:
            return accepted, emitted, pair.extend(node.ctx_hash, emitted)
        accepted.append(nxt)
        node = nxt


# ----------------------------------------------------------------------
# Theorem 3.1 quantities (ground truth, used in tests and ablations)
# ----------------------------------------------------------------------
def true_path_probability(
    pair: ModelPair,
    root_ctx: int,
    path_tokens: Sequence[int],
    center: float | None = None,
) -> float:
    """True f(v): probability the target accepts the whole path.

    The product of the target's conditional probabilities along the path —
    the quantity the draft's logits approximate (Equation 7).
    """
    ctx = root_ctx
    prob = 1.0
    for tok in path_tokens:
        prob *= pair.accept_prob(ctx, tok, center)
        if prob == 0.0:
            return 0.0
        ctx = pair.extend(ctx, tok)
    return prob


def expected_accepted_tokens(
    pair: ModelPair, root: VerifiableNode, center: float | None = None
) -> float:
    """E[acc(T)] for a tree, via the Theorem 3.1 decomposition.

    Sums the true path probability f(v) over all non-root nodes.  The
    guaranteed correction token is *not* included (add 1 for tokens
    generated per iteration).
    """
    total = 0.0
    stack: list[tuple[VerifiableNode, float, int]] = [(root, 1.0, root.ctx_hash)]
    while stack:
        node, prob, ctx = stack.pop()
        for child in node.children:
            p = prob * pair.accept_prob(ctx, child.token_id, center)
            total += p
            if p > 0.0:
                stack.append((child, p, pair.extend(ctx, child.token_id)))
    return total
