"""Synthetic target language model.

The paper's algorithms never look inside the LLM: they consume (a) a draft
model's next-token probabilities and (b) accept/reject outcomes when the
target model verifies speculated tokens.  ``StochasticLM`` supplies the
target side of that contract as a seeded stochastic process:

- For every *context* (a 64-bit rolling hash of the token sequence) the
  model exposes a truncated next-token distribution over ``branching``
  candidate tokens whose probabilities sum to exactly 1.  Truncation models
  the fact that, conditioned on a prefix, only a handful of continuations
  carry mass; it also makes sibling acceptance probabilities sum to 1,
  matching Appendix A of the paper.
- ``sample(ctx)`` returns the token the target model emits at that context.
  It is a deterministic function of the context, exactly like greedy/seeded
  decoding on a real model: re-verifying the same prefix always yields the
  same token, which is what makes tree verification sound.

The *predictability* knob controls how peaked distributions are, standing
in for how guessable a domain's text is (code >> free-form prose).  Higher
predictability yields higher top-1 mass and therefore higher speculative
acceptance rates.
"""

from __future__ import annotations

from repro._rng import (
    MASK64,
    _COMBINE,
    _GOLDEN,
    _INV_2_53,
    _MIX1,
    _MIX2,
    hash_seed,
    mix,
    salted,
    uniforms,
)
from repro.model.vocab import Vocabulary

# Salt namespaces; keep distinct so the same context hash yields independent
# randomness for each purpose.
_SALT_SHAPE = 0x51
_SALT_TOKENS = 0x52
_SALT_SAMPLE = 0x53

# Precomputed XOR masks (see repro._rng.salted): the per-draw multiply
# in `uniform(ctx, salt)` / the token-id draws is hoisted here, which is
# exact — the draws are unchanged bit for bit.
_SHAPE_MASK = salted(_SALT_SHAPE)
_SAMPLE_MASK = salted(_SALT_SAMPLE)
_TOKEN_MASKS: list[int] = [salted(_SALT_TOKENS + i) for i in range(64)]


def _token_mask(i: int) -> int:
    """XOR mask for the ``i``-th token-id draw (list grown on demand)."""
    while i >= len(_TOKEN_MASKS):
        _TOKEN_MASKS.append(salted(_SALT_TOKENS + len(_TOKEN_MASKS)))
    return _TOKEN_MASKS[i]


#: Below this many pending queries, batch prefetching cannot beat the
#: scalar generators (numpy dispatch overhead; see repro.model.batchgen)
#: — callers should not even build the items list.
PREFETCH_MIN_BATCH = 16

#: Distribution memos shared across model instances, keyed by the
#: parameter signature that fully determines the ctx -> distribution
#: mapping.  A model's distributions do not depend on its seed (the seed
#: only shapes which *contexts* arise), so every engine built with the
#: same model parameters — sweep points, fleet replicas, repeated runs
#: in one process — draws from one memo instead of regenerating the
#: same pure function per instance.
_SHARED_CACHES: dict[tuple, dict] = {}

#: Distinct parameter signatures memoized at once.  A long-lived process
#: sweeping many model parameterizations (property tests, mixed
#: benchmark sessions) must not accumulate distributions without bound:
#: past the cap every memo is emptied (live models keep working — they
#: simply refill on demand).
_MAX_SIGNATURES = 64


def shared_distribution_cache(signature: tuple) -> dict:
    """The process-wide distribution memo for a parameter signature."""
    cache = _SHARED_CACHES.get(signature)
    if cache is None:
        if len(_SHARED_CACHES) >= _MAX_SIGNATURES:
            for stale in _SHARED_CACHES.values():
                stale.clear()
            _SHARED_CACHES.clear()
        cache = _SHARED_CACHES[signature] = {}
    return cache

#: Default number of candidate continuations carrying mass at each context.
DEFAULT_BRANCHING = 8

#: Bounds on the top-1 probability regardless of predictability, so that no
#: context is perfectly predictable or perfectly flat.
_TOP1_FLOOR = 0.05
_TOP1_CEIL = 0.98


class TokenDistribution:
    """A truncated next-token distribution (treat as immutable).

    ``token_ids[i]`` occurs with probability ``probs[i]``; probabilities are
    sorted in descending order and sum to 1 (the lumped tail outside the
    truncation is folded into the listed candidates).

    A plain ``__slots__`` class rather than a frozen dataclass: millions
    are constructed per run, and the frozen-dataclass ``__init__`` (one
    ``object.__setattr__`` per field) was a measurable share of every
    distribution generation.
    """

    __slots__ = ("token_ids", "probs")

    def __init__(self, token_ids: tuple[int, ...], probs: tuple[float, ...]) -> None:
        if len(token_ids) != len(probs):
            raise ValueError("token_ids and probs length mismatch")
        self.token_ids = token_ids
        self.probs = probs

    def prob_of(self, token_id: int) -> float:
        """Probability of ``token_id`` (0.0 if outside the truncation)."""
        for tid, p in zip(self.token_ids, self.probs):
            if tid == token_id:
                return p
        return 0.0

    def top_token(self) -> int:
        """The most likely continuation."""
        return self.token_ids[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TokenDistribution):
            return NotImplemented
        return self.token_ids == other.token_ids and self.probs == other.probs

    def __hash__(self) -> int:
        return hash((self.token_ids, self.probs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenDistribution(token_ids={self.token_ids!r}, probs={self.probs!r})"


class StochasticLM:
    """Seeded synthetic target model over a vocabulary.

    Parameters
    ----------
    vocab:
        Token id space.
    seed:
        Global model seed; two models with the same seed are identical.
    branching:
        Number of candidate continuations per context.
    predictability:
        Mean top-1 probability in (0, 1).  Per-context top-1 mass is drawn
        uniformly from ``predictability ± spread`` (clipped).
    spread:
        Half-width of the per-context top-1 jitter.
    decay:
        Geometric ratio splitting the non-top-1 mass across the remaining
        candidates.
    """

    def __init__(
        self,
        vocab: Vocabulary,
        seed: int = 0,
        branching: int = DEFAULT_BRANCHING,
        predictability: float = 0.7,
        spread: float = 0.15,
        decay: float = 0.6,
    ) -> None:
        if branching < 2:
            raise ValueError("branching must be >= 2")
        if not 0.0 < predictability < 1.0:
            raise ValueError("predictability must be in (0, 1)")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.vocab = vocab
        self.seed = seed
        self.branching = branching
        self.predictability = predictability
        self.spread = spread
        self.decay = decay
        self._root = hash_seed(seed, 0x4C4D)  # ASCII "LM"
        self._n_regular = vocab.num_regular  # property hoisted off the hot path
        # Geometric weights for the non-top slots, precomputed and normalized.
        weights = [decay**i for i in range(branching - 1)]
        total = sum(weights)
        self._tail_weights = [w / total for w in weights]
        # ctx -> distribution is a pure function of these parameters
        # (not the seed), so the memo is shared across instances.
        self._cache: dict[int, TokenDistribution] = shared_distribution_cache(
            ("target", vocab.num_regular, branching, predictability, spread, decay)
        )
        self._cache_cap = 200_000

    # ------------------------------------------------------------------
    # Context handling
    # ------------------------------------------------------------------
    def context_of(self, tokens: list[int] | tuple[int, ...]) -> int:
        """Fold a token sequence into a context hash."""
        h = self._root
        for t in tokens:
            h = mix(h, t)
        return h

    def extend(self, ctx: int, token_id: int) -> int:
        """Context hash after appending one token.

        Inlined ``mix`` (tree construction extends a context per node).
        """
        x = (((ctx ^ (token_id * _COMBINE)) & MASK64) + _GOLDEN) & MASK64
        x = ((x ^ (x >> 30)) * _MIX1) & MASK64
        x = ((x ^ (x >> 27)) * _MIX2) & MASK64
        return x ^ (x >> 31)

    # ------------------------------------------------------------------
    # Distributions and sampling
    # ------------------------------------------------------------------
    def distribution(self, ctx: int, center: float | None = None) -> TokenDistribution:
        """Next-token distribution at a context (cached).

        ``center`` overrides the model-level predictability for this
        context; workloads use it to make, e.g., code more guessable than
        prose for the same underlying model.
        """
        key = ctx if center is None else mix(ctx, int(center * 1e6))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        dist = self._generate(ctx, self.predictability if center is None else center)
        if len(self._cache) >= self._cache_cap:
            self._cache.clear()
        self._cache[key] = dist
        return dist

    def _generate(self, ctx: int, center: float) -> TokenDistribution:
        # This is the simulator's innermost hot function (millions of
        # fresh contexts per run), so the splitmix64 finalizer is inlined
        # and the per-draw salts are precomputed — every draw is
        # bit-identical to uniform()/splitmix64() on the original salts.
        k = self.branching
        x = ((ctx ^ _SHAPE_MASK) + _GOLDEN) & MASK64
        x = ((x ^ (x >> 30)) * _MIX1) & MASK64
        x = ((x ^ (x >> 27)) * _MIX2) & MASK64
        u = ((x ^ (x >> 31)) >> 11) * _INV_2_53
        top1 = center + self.spread * (2.0 * u - 1.0)
        if top1 < _TOP1_FLOOR:
            top1 = _TOP1_FLOOR
        elif top1 > _TOP1_CEIL:
            top1 = _TOP1_CEIL
        tail_mass = 1.0 - top1
        probs = (top1, *[tail_mass * w for w in self._tail_weights])
        return TokenDistribution(tuple(self._draw_token_ids(ctx)), probs)

    def _draw_token_ids(self, ctx: int) -> list[int]:
        """Draw k distinct regular token ids for a context.

        Fast path: the first k draws are almost always distinct
        (collision odds ~ k^2 / vocab); when they are not, replay the
        exact skip-duplicates loop.  Also used by the vectorized batch
        generator (:mod:`repro.model.batchgen`) to repair collided rows.
        """
        k = self.branching
        n_regular = self._n_regular
        masks = _TOKEN_MASKS
        if k > len(masks):
            _token_mask(k - 1)
        ids: list[int] = []
        for i in range(k):
            y = ((ctx ^ masks[i]) + _GOLDEN) & MASK64
            y = ((y ^ (y >> 30)) * _MIX1) & MASK64
            y = ((y ^ (y >> 27)) * _MIX2) & MASK64
            ids.append((y ^ (y >> 31)) % n_regular)
        if len(set(ids)) != k:
            ids = []
            seen: set[int] = set()
            i = 0
            while len(ids) < k:
                y = ((ctx ^ _token_mask(i)) + _GOLDEN) & MASK64
                y = ((y ^ (y >> 30)) * _MIX1) & MASK64
                y = ((y ^ (y >> 27)) * _MIX2) & MASK64
                tid = (y ^ (y >> 31)) % n_regular
                if tid not in seen:
                    seen.add(tid)
                    ids.append(tid)
                i += 1
        return ids

    def sample(self, ctx: int, center: float | None = None) -> int:
        """The token the target emits at this context (deterministic)."""
        # Inline the memo probe: decode loops sample right after a batch
        # prefetch, so the hit path should not pay the distribution()
        # frame + key recomputation.
        if center is None:
            key = ctx
        else:
            x = (((ctx ^ (int(center * 1e6) * _COMBINE)) & MASK64) + _GOLDEN) & MASK64
            x = ((x ^ (x >> 30)) * _MIX1) & MASK64
            x = ((x ^ (x >> 27)) * _MIX2) & MASK64
            key = x ^ (x >> 31)
        dist = self._cache.get(key)
        if dist is None:
            dist = self.distribution(ctx, center)
        x = ((ctx ^ _SAMPLE_MASK) + _GOLDEN) & MASK64
        x = ((x ^ (x >> 30)) * _MIX1) & MASK64
        x = ((x ^ (x >> 27)) * _MIX2) & MASK64
        u = ((x ^ (x >> 31)) >> 11) * _INV_2_53
        acc = 0.0
        for tid, p in zip(dist.token_ids, dist.probs):
            acc += p
            if u < acc:
                return tid
        return dist.token_ids[-1]

    def prefetch(self, items) -> None:
        """Warm the distribution memo for many ``(ctx, center)`` queries.

        Vectorized batch generation (see :mod:`repro.model.batchgen`);
        bit-identical to generating on demand, and a no-op when numpy is
        unavailable or the batch is too small to amortize.
        """
        from repro.model import batchgen

        batchgen.prefetch_target(self, items)

    def greedy(self, ctx: int, center: float | None = None) -> int:
        """The argmax continuation at this context."""
        return self.distribution(ctx, center).top_token()

    def clear_cache(self) -> None:
        """Drop memoized distributions (for memory-bounded long runs)."""
        self._cache.clear()


def uniforms_for_noise(ctx: int, salt: int, n: int) -> list[float]:
    """Expose the raw uniform stream for draft-noise construction."""
    return uniforms(ctx, salt, n)
