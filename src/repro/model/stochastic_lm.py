"""Synthetic target language model.

The paper's algorithms never look inside the LLM: they consume (a) a draft
model's next-token probabilities and (b) accept/reject outcomes when the
target model verifies speculated tokens.  ``StochasticLM`` supplies the
target side of that contract as a seeded stochastic process:

- For every *context* (a 64-bit rolling hash of the token sequence) the
  model exposes a truncated next-token distribution over ``branching``
  candidate tokens whose probabilities sum to exactly 1.  Truncation models
  the fact that, conditioned on a prefix, only a handful of continuations
  carry mass; it also makes sibling acceptance probabilities sum to 1,
  matching Appendix A of the paper.
- ``sample(ctx)`` returns the token the target model emits at that context.
  It is a deterministic function of the context, exactly like greedy/seeded
  decoding on a real model: re-verifying the same prefix always yields the
  same token, which is what makes tree verification sound.

The *predictability* knob controls how peaked distributions are, standing
in for how guessable a domain's text is (code >> free-form prose).  Higher
predictability yields higher top-1 mass and therefore higher speculative
acceptance rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._rng import hash_seed, mix, splitmix64, uniform, uniforms
from repro.model.vocab import Vocabulary

# Salt namespaces; keep distinct so the same context hash yields independent
# randomness for each purpose.
_SALT_SHAPE = 0x51
_SALT_TOKENS = 0x52
_SALT_SAMPLE = 0x53

#: Default number of candidate continuations carrying mass at each context.
DEFAULT_BRANCHING = 8

#: Bounds on the top-1 probability regardless of predictability, so that no
#: context is perfectly predictable or perfectly flat.
_TOP1_FLOOR = 0.05
_TOP1_CEIL = 0.98


@dataclass(frozen=True)
class TokenDistribution:
    """A truncated next-token distribution.

    ``token_ids[i]`` occurs with probability ``probs[i]``; probabilities are
    sorted in descending order and sum to 1 (the lumped tail outside the
    truncation is folded into the listed candidates).
    """

    token_ids: tuple[int, ...]
    probs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.token_ids) != len(self.probs):
            raise ValueError("token_ids and probs length mismatch")

    def prob_of(self, token_id: int) -> float:
        """Probability of ``token_id`` (0.0 if outside the truncation)."""
        for tid, p in zip(self.token_ids, self.probs):
            if tid == token_id:
                return p
        return 0.0

    def top_token(self) -> int:
        """The most likely continuation."""
        return self.token_ids[0]


class StochasticLM:
    """Seeded synthetic target model over a vocabulary.

    Parameters
    ----------
    vocab:
        Token id space.
    seed:
        Global model seed; two models with the same seed are identical.
    branching:
        Number of candidate continuations per context.
    predictability:
        Mean top-1 probability in (0, 1).  Per-context top-1 mass is drawn
        uniformly from ``predictability ± spread`` (clipped).
    spread:
        Half-width of the per-context top-1 jitter.
    decay:
        Geometric ratio splitting the non-top-1 mass across the remaining
        candidates.
    """

    def __init__(
        self,
        vocab: Vocabulary,
        seed: int = 0,
        branching: int = DEFAULT_BRANCHING,
        predictability: float = 0.7,
        spread: float = 0.15,
        decay: float = 0.6,
    ) -> None:
        if branching < 2:
            raise ValueError("branching must be >= 2")
        if not 0.0 < predictability < 1.0:
            raise ValueError("predictability must be in (0, 1)")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.vocab = vocab
        self.seed = seed
        self.branching = branching
        self.predictability = predictability
        self.spread = spread
        self.decay = decay
        self._root = hash_seed(seed, 0x4C4D)  # ASCII "LM"
        # Geometric weights for the non-top slots, precomputed and normalized.
        weights = [decay**i for i in range(branching - 1)]
        total = sum(weights)
        self._tail_weights = [w / total for w in weights]
        self._cache: dict[int, TokenDistribution] = {}
        self._cache_cap = 200_000

    # ------------------------------------------------------------------
    # Context handling
    # ------------------------------------------------------------------
    def context_of(self, tokens: list[int] | tuple[int, ...]) -> int:
        """Fold a token sequence into a context hash."""
        h = self._root
        for t in tokens:
            h = mix(h, t)
        return h

    def extend(self, ctx: int, token_id: int) -> int:
        """Context hash after appending one token."""
        return mix(ctx, token_id)

    # ------------------------------------------------------------------
    # Distributions and sampling
    # ------------------------------------------------------------------
    def distribution(self, ctx: int, center: float | None = None) -> TokenDistribution:
        """Next-token distribution at a context (cached).

        ``center`` overrides the model-level predictability for this
        context; workloads use it to make, e.g., code more guessable than
        prose for the same underlying model.
        """
        key = ctx if center is None else mix(ctx, int(center * 1e6))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        dist = self._generate(ctx, self.predictability if center is None else center)
        if len(self._cache) >= self._cache_cap:
            self._cache.clear()
        self._cache[key] = dist
        return dist

    def _generate(self, ctx: int, center: float) -> TokenDistribution:
        k = self.branching
        u = uniform(ctx, _SALT_SHAPE)
        top1 = center + self.spread * (2.0 * u - 1.0)
        if top1 < _TOP1_FLOOR:
            top1 = _TOP1_FLOOR
        elif top1 > _TOP1_CEIL:
            top1 = _TOP1_CEIL
        tail_mass = 1.0 - top1
        probs = [top1] + [tail_mass * w for w in self._tail_weights]

        # Draw k distinct regular token ids.
        n_regular = self.vocab.num_regular
        ids: list[int] = []
        seen: set[int] = set()
        i = 0
        while len(ids) < k:
            tid = splitmix64((ctx ^ ((_SALT_TOKENS + i) * 0x2545F4914F6CDD1D)) & ((1 << 64) - 1)) % n_regular
            if tid not in seen:
                seen.add(tid)
                ids.append(tid)
            i += 1
        return TokenDistribution(tuple(ids), tuple(probs))

    def sample(self, ctx: int, center: float | None = None) -> int:
        """The token the target emits at this context (deterministic)."""
        dist = self.distribution(ctx, center)
        u = uniform(ctx, _SALT_SAMPLE)
        acc = 0.0
        for tid, p in zip(dist.token_ids, dist.probs):
            acc += p
            if u < acc:
                return tid
        return dist.token_ids[-1]

    def greedy(self, ctx: int, center: float | None = None) -> int:
        """The argmax continuation at this context."""
        return self.distribution(ctx, center).top_token()

    def clear_cache(self) -> None:
        """Drop memoized distributions (for memory-bounded long runs)."""
        self._cache.clear()


def uniforms_for_noise(ctx: int, salt: int, n: int) -> list[float]:
    """Expose the raw uniform stream for draft-noise construction."""
    return uniforms(ctx, salt, n)
