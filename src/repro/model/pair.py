"""Coupled draft/target model pair.

``ModelPair`` bundles the target :class:`StochasticLM` and its
:class:`DraftLM` speculator and exposes the two primitives every scheduler
in this repository is written against:

- ``draft_children(ctx, w)``: the draft's top-w continuations with their
  conditional probabilities (what speculation consumes);
- ``target_sample(ctx)``: the token the target emits at a context (what
  verification consumes).

It also provides convenience constructors for the model families used in
the paper's evaluation (Llama-3.1-70B + Llama-3.2-1B, Qwen2.5-32B +
Qwen2.5-0.5B), mapping each family to an alignment level: the Qwen draft is
smaller relative to its target, so we give it slightly lower alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.draft import DraftLM
from repro.model.stochastic_lm import StochasticLM, TokenDistribution
from repro.model.vocab import Vocabulary


@dataclass(frozen=True)
class PairPreset:
    """Named configuration for a draft/target pair."""

    name: str
    vocab_size: int
    alignment: float
    predictability: float


#: Presets mirroring Table 1's model families.  Alignment stands in for
#: draft quality (how well draft logits approximate target acceptance).
PAIR_PRESETS: dict[str, PairPreset] = {
    "llama70b-1b": PairPreset("llama70b-1b", 128_256, alignment=0.88, predictability=0.72),
    "qwen32b-05b": PairPreset("qwen32b-05b", 151_936, alignment=0.82, predictability=0.70),
    "toy": PairPreset("toy", 1_000, alignment=0.9, predictability=0.75),
}


class ModelPair:
    """A target model and the draft model speculating for it."""

    def __init__(self, target: StochasticLM, draft: DraftLM) -> None:
        if draft.target is not target:
            raise ValueError("draft must wrap the same target model")
        self.target = target
        self.draft = draft
        # Bind the hottest delegations straight to the underlying bound
        # methods (instance attributes shadow the class methods below):
        # speculation calls these millions of times per run, and the
        # extra delegating frame is pure overhead.
        self.extend = target.extend
        self.draft_children = draft.top_w
        self.target_sample = target.sample

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_preset(cls, name: str, seed: int = 0, predictability: float | None = None) -> "ModelPair":
        """Build a pair from a named preset (see :data:`PAIR_PRESETS`)."""
        try:
            preset = PAIR_PRESETS[name]
        except KeyError:
            raise KeyError(
                f"unknown pair preset {name!r}; available: {sorted(PAIR_PRESETS)}"
            ) from None
        pred = preset.predictability if predictability is None else predictability
        target = StochasticLM(Vocabulary(preset.vocab_size), seed=seed, predictability=pred)
        return cls(target, DraftLM(target, alignment=preset.alignment))

    @classmethod
    def build(
        cls,
        vocab_size: int = 32_000,
        seed: int = 0,
        alignment: float = 0.85,
        predictability: float = 0.7,
        branching: int = 8,
    ) -> "ModelPair":
        """Build a pair from raw knobs."""
        target = StochasticLM(
            Vocabulary(vocab_size),
            seed=seed,
            branching=branching,
            predictability=predictability,
        )
        return cls(target, DraftLM(target, alignment=alignment))

    # -- shared context handling ----------------------------------------
    @property
    def vocab(self) -> Vocabulary:
        """The shared vocabulary."""
        return self.target.vocab

    def context_of(self, tokens) -> int:
        """Context hash for a token sequence."""
        return self.target.context_of(tokens)

    def extend(self, ctx: int, token_id: int) -> int:
        """Context hash after appending one token."""
        return self.target.extend(ctx, token_id)

    # -- speculation side -------------------------------------------------
    def draft_children(self, ctx: int, w: int, center: float | None = None) -> list[tuple[int, float]]:
        """The draft's top-``w`` continuations at ``ctx`` as (token, prob)."""
        return self.draft.top_w(ctx, w, center)

    def draft_distribution(self, ctx: int, center: float | None = None) -> TokenDistribution:
        """Full (truncated) draft distribution at ``ctx``."""
        return self.draft.distribution(ctx, center)

    # -- verification side ------------------------------------------------
    def target_sample(self, ctx: int, center: float | None = None) -> int:
        """The token the target emits at ``ctx`` (deterministic per context)."""
        return self.target.sample(ctx, center)

    def target_distribution(self, ctx: int, center: float | None = None) -> TokenDistribution:
        """Full (truncated) target distribution at ``ctx``."""
        return self.target.distribution(ctx, center)

    def accept_prob(self, ctx: int, token_id: int, center: float | None = None) -> float:
        """True conditional acceptance probability of ``token_id`` at ``ctx``.

        Over the ensemble of contexts, the target's sampled token matches
        ``token_id`` with exactly this probability, so it is the ground-truth
        counterpart of the draft's conditional estimate.
        """
        return self.target.distribution(ctx, center).prob_of(token_id)

    def clear_caches(self) -> None:
        """Drop both models' memoized distributions."""
        self.target.clear_cache()
        self.draft.clear_cache()
