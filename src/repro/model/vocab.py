"""Vocabulary abstraction for the synthetic language models.

Real serving systems carry a tokenizer; the simulation only needs token
*identities* (for tree-node equality during verification) and a vocabulary
size (for drawing distinct candidate ids).  Token ids are plain ints in
``[0, size)``.  A few ids at the top of the range are reserved for special
tokens so workloads can mark prompt boundaries if they want to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._rng import hash_seed, randint

#: Number of ids reserved at the top of the vocabulary for special tokens.
NUM_SPECIAL_TOKENS = 4


@dataclass(frozen=True)
class Vocabulary:
    """A token id space.

    Parameters
    ----------
    size:
        Total number of token ids, including the reserved special ids.
    """

    size: int = 32_000

    def __post_init__(self) -> None:
        if self.size <= NUM_SPECIAL_TOKENS + 1:
            raise ValueError(f"vocabulary too small: {self.size}")

    @property
    def bos_token(self) -> int:
        """Beginning-of-sequence marker."""
        return self.size - 1

    @property
    def eos_token(self) -> int:
        """End-of-sequence marker."""
        return self.size - 2

    @property
    def pad_token(self) -> int:
        """Padding marker (unused by the simulator, present for realism)."""
        return self.size - 3

    @property
    def num_regular(self) -> int:
        """Number of ordinary (non-special) token ids."""
        return self.size - NUM_SPECIAL_TOKENS

    def is_special(self, token_id: int) -> bool:
        """Whether ``token_id`` is one of the reserved special ids."""
        return token_id >= self.num_regular

    def validate(self, token_id: int) -> None:
        """Raise ``ValueError`` if ``token_id`` is outside the vocabulary."""
        if not 0 <= token_id < self.size:
            raise ValueError(f"token id {token_id} outside vocabulary of size {self.size}")

    def random_prompt(self, seed: int, length: int) -> list[int]:
        """Deterministically synthesize a prompt of ``length`` regular tokens."""
        if length < 0:
            raise ValueError(f"negative prompt length: {length}")
        h = hash_seed(seed, 0x50524F4D)  # ASCII "PROM"
        return [randint(h, i, 0, self.num_regular) for i in range(length)]
