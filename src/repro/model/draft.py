"""Synthetic draft (speculator) model.

A draft model in speculative decoding is a small network whose next-token
distribution approximates the target's — typically because it was distilled
from it (the paper leans on this in §4.2 to justify using draft logits as
surrogates for path probabilities f(v)).

``DraftLM`` reproduces that relationship with a single *alignment* knob:

    draft_probs = normalize(alignment * target_probs + (1 - alignment) * noise)

- ``alignment = 1.0``: the draft is a perfect surrogate (distillation
  limit); its path-probability estimates equal the true f(v).
- ``alignment = 0.0``: the draft is uninformative noise over the same
  support; speculation degenerates.

The draft shares the target's truncated support.  This mirrors reality
closely enough for the algorithms under study: what matters is that the
*ranking and rough magnitude* of draft probabilities track true acceptance
probabilities, with controllable estimation error.
"""

from __future__ import annotations

from operator import itemgetter

from repro._rng import (
    MASK64,
    _COMBINE,
    _GOLDEN,
    _INV_2_53,
    _MIX1,
    _MIX2,
    salted,
)
from repro.model.stochastic_lm import (
    StochasticLM,
    TokenDistribution,
    shared_distribution_cache,
)

_SALT_NOISE = 0x44_52  # ASCII "DR"

#: Precomputed XOR mask for the noise stream (see repro._rng.salted).
_NOISE_MASK = salted(_SALT_NOISE)

#: Sort key for (token, prob) pairs — itemgetter beats a lambda in the
#: per-context distribution construction.
_BY_PROB = itemgetter(1)


class DraftLM:
    """A speculator whose distribution is an alignment-mixture of the target's.

    Parameters
    ----------
    target:
        The target :class:`StochasticLM` this draft approximates.
    alignment:
        Mixture weight on the target distribution, in [0, 1].
    """

    def __init__(self, target: StochasticLM, alignment: float = 0.85) -> None:
        if not 0.0 <= alignment <= 1.0:
            raise ValueError(f"alignment must be in [0, 1], got {alignment}")
        self.target = target
        self.alignment = alignment
        # Same sharing rationale as the target's memo: the draft mapping
        # is fully determined by the target's parameters + alignment.
        self._cache: dict[int, TokenDistribution] = shared_distribution_cache(
            (
                "draft",
                target.vocab.num_regular,
                target.branching,
                target.predictability,
                target.spread,
                target.decay,
                alignment,
            )
        )
        self._cache_cap = 200_000

    @property
    def vocab(self):
        """The shared vocabulary."""
        return self.target.vocab

    def context_of(self, tokens) -> int:
        """Context hash for a token sequence (shared with the target)."""
        return self.target.context_of(tokens)

    def extend(self, ctx: int, token_id: int) -> int:
        """Context hash after appending one token (shared with the target)."""
        return self.target.extend(ctx, token_id)

    def distribution(self, ctx: int, center: float | None = None) -> TokenDistribution:
        """Draft next-token distribution at a context (cached).

        Shares the target's support; probabilities are re-sorted descending
        so that ``token_ids[0]`` is the draft's top pick, which may differ
        from the target's when alignment < 1.  ``center`` is forwarded to
        the target (per-request predictability).
        """
        # Innermost hot path (one call per candidate-tree node): the
        # cache key is computed once and shared with the target's memo
        # (same derivation, distinct dicts), the noise stream is the
        # uniforms() loop inlined, and (ids, probs) come from one
        # zip(*...) — every float is produced by the same operations in
        # the same order as the reference implementation above each
        # block, so cached and regenerated distributions are identical.
        if center is None:
            key = ctx
        else:
            # mix(ctx, int(center * 1e6)), inlined.
            x = (((ctx ^ (int(center * 1e6) * _COMBINE)) & MASK64) + _GOLDEN) & MASK64
            x = ((x ^ (x >> 30)) * _MIX1) & MASK64
            x = ((x ^ (x >> 27)) * _MIX2) & MASK64
            key = x ^ (x >> 31)
        cache = self._cache
        cached = cache.get(key)
        if cached is not None:
            return cached
        target = self.target
        tgt_cache = target._cache
        tgt = tgt_cache.get(key)
        if tgt is None:
            tgt = target._generate(
                ctx, target.predictability if center is None else center
            )
            if len(tgt_cache) >= target._cache_cap:
                tgt_cache.clear()
            tgt_cache[key] = tgt
        a = self.alignment
        if a >= 1.0:
            dist = tgt
        else:
            # uniforms(ctx, _SALT_NOISE, k), inlined.
            k = len(tgt.token_ids)
            x = ((ctx ^ _NOISE_MASK) + _GOLDEN) & MASK64
            x = ((x ^ (x >> 30)) * _MIX1) & MASK64
            x = ((x ^ (x >> 27)) * _MIX2) & MASK64
            x ^= x >> 31
            noise = []
            append = noise.append
            for _ in range(k):
                x = (x + _GOLDEN) & MASK64
                y = ((x ^ (x >> 30)) * _MIX1) & MASK64
                y = ((y ^ (y >> 27)) * _MIX2) & MASK64
                y ^= y >> 31
                append((y >> 11) * _INV_2_53)
            noise_total = sum(noise)
            inv_a = 1.0 - a
            mixed = [
                a * p + inv_a * (n / noise_total)
                for p, n in zip(tgt.probs, noise)
            ]
            total = sum(mixed)
            pairs = sorted(
                zip(tgt.token_ids, [m / total for m in mixed]),
                key=_BY_PROB,
                reverse=True,
            )
            ids, probs = zip(*pairs)
            dist = TokenDistribution(ids, probs)
        if len(cache) >= self._cache_cap:
            cache.clear()
        cache[key] = dist
        return dist

    def prefetch(self, items) -> None:
        """Warm the draft (and target) memos for many ``(ctx, center)`` queries.

        Vectorized batch generation (see :mod:`repro.model.batchgen`);
        bit-identical to generating on demand, and a no-op when numpy is
        unavailable or the batch is too small to amortize.
        """
        from repro.model import batchgen

        batchgen.prefetch_draft(self, items)

    def top_w(self, ctx: int, w: int, center: float | None = None) -> list[tuple[int, float]]:
        """The draft's ``w`` most likely continuations as (token, prob) pairs."""
        dist = self.distribution(ctx, center)
        return list(zip(dist.token_ids[:w], dist.probs[:w]))

    def clear_cache(self) -> None:
        """Drop memoized distributions."""
        self._cache.clear()
