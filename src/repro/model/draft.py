"""Synthetic draft (speculator) model.

A draft model in speculative decoding is a small network whose next-token
distribution approximates the target's — typically because it was distilled
from it (the paper leans on this in §4.2 to justify using draft logits as
surrogates for path probabilities f(v)).

``DraftLM`` reproduces that relationship with a single *alignment* knob:

    draft_probs = normalize(alignment * target_probs + (1 - alignment) * noise)

- ``alignment = 1.0``: the draft is a perfect surrogate (distillation
  limit); its path-probability estimates equal the true f(v).
- ``alignment = 0.0``: the draft is uninformative noise over the same
  support; speculation degenerates.

The draft shares the target's truncated support.  This mirrors reality
closely enough for the algorithms under study: what matters is that the
*ranking and rough magnitude* of draft probabilities track true acceptance
probabilities, with controllable estimation error.
"""

from __future__ import annotations

from repro._rng import mix as _mix, uniforms
from repro.model.stochastic_lm import StochasticLM, TokenDistribution

_SALT_NOISE = 0x44_52  # ASCII "DR"


class DraftLM:
    """A speculator whose distribution is an alignment-mixture of the target's.

    Parameters
    ----------
    target:
        The target :class:`StochasticLM` this draft approximates.
    alignment:
        Mixture weight on the target distribution, in [0, 1].
    """

    def __init__(self, target: StochasticLM, alignment: float = 0.85) -> None:
        if not 0.0 <= alignment <= 1.0:
            raise ValueError(f"alignment must be in [0, 1], got {alignment}")
        self.target = target
        self.alignment = alignment
        self._cache: dict[int, TokenDistribution] = {}
        self._cache_cap = 200_000

    @property
    def vocab(self):
        """The shared vocabulary."""
        return self.target.vocab

    def context_of(self, tokens) -> int:
        """Context hash for a token sequence (shared with the target)."""
        return self.target.context_of(tokens)

    def extend(self, ctx: int, token_id: int) -> int:
        """Context hash after appending one token (shared with the target)."""
        return self.target.extend(ctx, token_id)

    def distribution(self, ctx: int, center: float | None = None) -> TokenDistribution:
        """Draft next-token distribution at a context (cached).

        Shares the target's support; probabilities are re-sorted descending
        so that ``token_ids[0]`` is the draft's top pick, which may differ
        from the target's when alignment < 1.  ``center`` is forwarded to
        the target (per-request predictability).
        """
        key = ctx if center is None else _mix(ctx, int(center * 1e6))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        tgt = self.target.distribution(ctx, center)
        k = len(tgt.token_ids)
        a = self.alignment
        if a >= 1.0:
            dist = tgt
        else:
            noise = uniforms(ctx, _SALT_NOISE, k)
            noise_total = sum(noise)
            mixed = [
                a * p + (1.0 - a) * (n / noise_total)
                for p, n in zip(tgt.probs, noise)
            ]
            total = sum(mixed)
            pairs = sorted(
                zip(tgt.token_ids, (m / total for m in mixed)),
                key=lambda tp: tp[1],
                reverse=True,
            )
            dist = TokenDistribution(
                tuple(t for t, _ in pairs), tuple(p for _, p in pairs)
            )
        if len(self._cache) >= self._cache_cap:
            self._cache.clear()
        self._cache[key] = dist
        return dist

    def top_w(self, ctx: int, w: int, center: float | None = None) -> list[tuple[int, float]]:
        """The draft's ``w`` most likely continuations as (token, prob) pairs."""
        dist = self.distribution(ctx, center)
        return list(zip(dist.token_ids[:w], dist.probs[:w]))

    def clear_cache(self) -> None:
        """Drop memoized distributions."""
        self._cache.clear()
