"""Synthetic language-model substrate (target + draft pair).

See DESIGN.md §1 for why a seeded stochastic model pair is a faithful
substitute for real LLM weights in this reproduction.
"""

from repro.model.calibration import (
    DraftQuality,
    calibrate_alignment,
    measure_acceptance,
    measure_draft_quality,
)
from repro.model.acceptance import (
    expected_accepted_tokens,
    true_path_probability,
    verify_sequence,
    verify_tree,
)
from repro.model.draft import DraftLM
from repro.model.pair import PAIR_PRESETS, ModelPair, PairPreset
from repro.model.stochastic_lm import StochasticLM, TokenDistribution
from repro.model.vocab import Vocabulary

__all__ = [
    "DraftLM",
    "DraftQuality",
    "calibrate_alignment",
    "measure_acceptance",
    "measure_draft_quality",
    "ModelPair",
    "PairPreset",
    "PAIR_PRESETS",
    "StochasticLM",
    "TokenDistribution",
    "Vocabulary",
    "expected_accepted_tokens",
    "true_path_probability",
    "verify_sequence",
    "verify_tree",
]
