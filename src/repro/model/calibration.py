"""Calibration utilities for the synthetic model substrate.

The substrate's two quality knobs — per-category *predictability* and the
draft's *alignment* — are set in DESIGN.md to land acceptance rates in the
band the paper reports (Figure 12: ~2-6 accepted tokens per verification).
This module makes that calibration reproducible and testable:

- :func:`measure_acceptance` — empirical accepted-tokens-per-verification
  of a (pair, beam shape, predictability) configuration;
- :func:`measure_draft_quality` — agreement statistics between draft
  estimates and true acceptance probabilities (the Equation 7 surrogate's
  fidelity);
- :func:`calibrate_alignment` — find the alignment level that achieves a
  target acceptance rate, by bisection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.speculation import build_candidate_tree
from repro.model.acceptance import verify_tree
from repro.model.pair import ModelPair


@dataclass(frozen=True)
class DraftQuality:
    """Fidelity of the draft's acceptance estimates (Equation 7)."""

    mean_estimate: float
    mean_true: float
    correlation: float
    top1_agreement: float  # how often draft argmax == target argmax

    @property
    def bias(self) -> float:
        """Signed estimation bias (negative = draft is conservative)."""
        return self.mean_estimate - self.mean_true


def measure_acceptance(
    pair: ModelPair,
    n_contexts: int = 200,
    depth: int = 4,
    width: int = 2,
    center: float | None = None,
    seed_tokens: tuple[int, int] = (11, 29),
) -> float:
    """Mean accepted draft tokens per verification over sampled contexts."""
    if n_contexts < 1:
        raise ValueError("n_contexts must be >= 1")
    total = 0
    a, b = seed_tokens
    for i in range(n_contexts):
        ctx = pair.context_of([i * a + b, i])
        tree = build_candidate_tree(pair, 0, ctx, depth, width, center=center)
        accepted, _, _ = verify_tree(pair, tree.root, center=center)
        total += len(accepted)
    return total / n_contexts


def measure_draft_quality(
    pair: ModelPair,
    n_contexts: int = 300,
    center: float | None = None,
) -> DraftQuality:
    """Agreement between draft top-1 estimates and true acceptance."""
    if n_contexts < 2:
        raise ValueError("n_contexts must be >= 2")
    ests: list[float] = []
    trues: list[float] = []
    agree = 0
    for i in range(n_contexts):
        ctx = pair.context_of([i, 3 * i + 7])
        (tok, p), = pair.draft_children(ctx, 1, center)
        ests.append(p)
        trues.append(pair.accept_prob(ctx, tok, center))
        if tok == pair.target_distribution(ctx, center).top_token():
            agree += 1
    n = n_contexts
    mean_e = sum(ests) / n
    mean_t = sum(trues) / n
    cov = sum((e - mean_e) * (t - mean_t) for e, t in zip(ests, trues)) / n
    var_e = sum((e - mean_e) ** 2 for e in ests) / n
    var_t = sum((t - mean_t) ** 2 for t in trues) / n
    corr = cov / (var_e**0.5 * var_t**0.5) if var_e > 0 and var_t > 0 else 0.0
    return DraftQuality(
        mean_estimate=mean_e,
        mean_true=mean_t,
        correlation=corr,
        top1_agreement=agree / n,
    )


def calibrate_alignment(
    target_acceptance: float,
    vocab_size: int = 8000,
    seed: int = 0,
    predictability: float = 0.7,
    depth: int = 4,
    width: int = 2,
    n_contexts: int = 150,
    tolerance: float = 0.05,
    max_iters: int = 12,
) -> tuple[float, float]:
    """Bisection for the alignment achieving a target acceptance rate.

    Returns (alignment, achieved acceptance).  Raises ``ValueError`` if
    the target is outside what alignment in [0, 1] can reach for the
    given predictability/beam shape.
    """

    def acceptance(alignment: float) -> float:
        pair = ModelPair.build(
            vocab_size=vocab_size,
            seed=seed,
            alignment=alignment,
            predictability=predictability,
        )
        return measure_acceptance(pair, n_contexts, depth, width)

    lo, hi = 0.0, 1.0
    acc_lo, acc_hi = acceptance(lo), acceptance(hi)
    if not acc_lo - tolerance <= target_acceptance <= acc_hi + tolerance:
        raise ValueError(
            f"target acceptance {target_acceptance:.2f} outside achievable "
            f"range [{acc_lo:.2f}, {acc_hi:.2f}]"
        )
    best = (hi, acc_hi)
    for _ in range(max_iters):
        mid = (lo + hi) / 2
        acc = acceptance(mid)
        if abs(acc - target_acceptance) < abs(best[1] - target_acceptance):
            best = (mid, acc)
        if abs(acc - target_acceptance) <= tolerance:
            return mid, acc
        if acc < target_acceptance:
            lo = mid
        else:
            hi = mid
    return best
