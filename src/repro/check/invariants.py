"""Runtime invariant sanitizer (``--check-invariants``).

Deep structural checks the simulator cannot afford on every run: KV and
prefix-block refcount conservation after every admit/finish/preempt/
crash, per-replica and global event-time monotonicity, gauge-sampler
catch-up bounds, and request conservation at merge points.  Violations
raise :class:`InvariantViolation` immediately, carrying structured
context (invariant name, replica, request, block, sim time) so a report
names exactly what broke and where.

Gating follows the observability pattern (``engine.obs``): engines and
schedulers carry an ``inv`` attribute that is ``None`` by default, and
every hook site is ``inv = self.inv; if inv is not None: ...`` — the
sanitizer-off hot path pays one attribute load per lifecycle event and
nothing else.  The checks themselves are read-only over simulator state,
so a checked run's report is byte-identical to an unchecked one's.
"""

from __future__ import annotations

import math
from collections import Counter

#: Time-comparison slack, matching SimClock.advance_to and
#: GaugeSampler.catch_up (floating-point event times).
_EPS = 1e-12


class InvariantViolation(AssertionError):
    """A runtime invariant failed; carries structured context.

    Subclasses ``AssertionError`` because these are assertions — a
    violation is a simulator bug (or deliberately corrupted state in a
    test), never a user-input error.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        replica: int | None = None,
        rid: int | None = None,
        block: int | None = None,
        time: float | None = None,
    ) -> None:
        self.invariant = invariant
        self.message = message
        self.replica = replica
        self.rid = rid
        self.block = block
        self.time = time
        super().__init__(self.format())

    def to_dict(self) -> dict:
        """Structured violation report (stable key set)."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "replica": self.replica,
            "rid": self.rid,
            "block": self.block,
            "time": self.time,
        }

    def format(self) -> str:
        where = [
            f"{name}={value}"
            for name, value in (
                ("replica", self.replica),
                ("rid", self.rid),
                ("block", self.block),
                ("t", self.time),
            )
            if value is not None
        ]
        suffix = f" [{' '.join(where)}]" if where else ""
        return f"invariant {self.invariant} violated: {self.message}{suffix}"


class _BoundInvariants:
    """Per-replica facade installed as ``engine.inv`` / ``scheduler.inv``.

    Binds the replica index once at attach time so lifecycle hooks do not
    thread it through every call.
    """

    __slots__ = ("checker", "replica")

    def __init__(self, checker: "InvariantChecker", replica: int) -> None:
        self.checker = checker
        self.replica = replica

    def kv(self, kv, event: str, rid: int | None = None) -> None:
        self.checker.check_kv(kv, event, replica=self.replica, rid=rid)


class InvariantChecker:
    """One sanitizer instance per run; shared across a fleet's replicas."""

    def __init__(self) -> None:
        #: Individual invariant evaluations performed (reported by the CLI).
        self.checks = 0
        self._replica_clock: dict[int, float] = {}
        self._event_clock = -math.inf

    # ------------------------------------------------------------------
    def attach(self, engine, scheduler, replica: int = 0) -> None:
        """Install lifecycle hooks on an engine + scheduler pair."""
        bound = _BoundInvariants(self, replica)
        engine.inv = bound
        scheduler.inv = bound

    # ------------------------------------------------------------------
    # KV / prefix-block conservation
    # ------------------------------------------------------------------
    def check_kv(
        self, kv, event: str, replica: int | None = None, rid: int | None = None
    ) -> None:
        """Full accounting audit of a KV manager after a lifecycle event."""
        self.checks += 1

        def fail(invariant: str, message: str, block: int | None = None) -> None:
            raise InvariantViolation(
                invariant,
                f"after {event}: {message}",
                replica=replica,
                rid=rid,
                block=block,
            )

        for owner, blocks in kv._allocated.items():
            if blocks < 0:
                fail("kv-allocation", f"request {owner} holds {blocks} blocks")
        total_private = sum(kv._allocated.values())
        if kv._used != total_private:
            fail(
                "kv-conservation",
                f"_used={kv._used} but allocations sum to {total_private}",
            )
        if kv.used_blocks > kv.total_blocks:
            fail(
                "kv-capacity",
                f"used_blocks={kv.used_blocks} exceeds total_blocks={kv.total_blocks}",
            )

        shared = getattr(kv, "_shared", None)
        if shared is None:
            return

        # Refcounts must equal the number of live chains referencing each
        # shared block — recomputed from scratch, not trusted.
        expected = Counter(key for chain in kv._refs.values() for key in chain)
        for key, block in shared.items():
            if block.refcount != expected[key]:
                fail(
                    "prefix-refcount",
                    f"block refcount={block.refcount} but "
                    f"{expected[key]} live chain(s) reference it",
                    block=key,
                )
        for key in expected:
            if key not in shared:
                fail(
                    "prefix-refcount",
                    "a live chain references a block missing from the shared table",
                    block=key,
                )
        unreferenced = sum(1 for block in shared.values() if block.refcount == 0)
        if kv._unreferenced != unreferenced:
            fail(
                "prefix-unreferenced",
                f"_unreferenced={kv._unreferenced} but {unreferenced} shared "
                "block(s) have refcount 0",
            )
        children = Counter(
            block.parent for block in shared.values() if block.parent is not None
        )
        for key, block in shared.items():
            if block.children != children[key]:
                fail(
                    "prefix-children",
                    f"block children={block.children} but {children[key]} "
                    "resident block(s) name it as parent",
                    block=key,
                )
        for owner, chain in kv._refs.items():
            for i, key in enumerate(chain):
                parent = shared[key].parent
                want = chain[i - 1] if i > 0 else None
                if parent != want:
                    fail(
                        "prefix-chain",
                        f"request {owner}'s chain breaks at position {i}: "
                        f"block parent={parent}, chain predecessor={want}",
                        block=key,
                    )

    # ------------------------------------------------------------------
    # Event-time monotonicity
    # ------------------------------------------------------------------
    def check_event_time(self, t: float) -> None:
        """Global event order: processed event times never decrease."""
        self.checks += 1
        if t < self._event_clock - _EPS:
            raise InvariantViolation(
                "event-monotonicity",
                f"event at t={t} processed after t={self._event_clock}",
                time=t,
            )
        self._event_clock = max(self._event_clock, t)

    def check_replica_step(self, replica: int, local_now: float) -> None:
        """Per-replica iteration boundaries never move backwards."""
        self.checks += 1
        last = self._replica_clock.get(replica, -math.inf)
        if local_now < last - _EPS:
            raise InvariantViolation(
                "replica-monotonicity",
                f"iteration boundary moved backwards: {last} -> {local_now}",
                replica=replica,
                time=local_now,
            )
        self._replica_clock[replica] = max(last, local_now)

    def check_sampler(self, sampler, t: float) -> None:
        """Gauge catch-up never samples beyond the driving event time."""
        self.checks += 1
        if sampler.samples and sampler.samples[-1].t > t + _EPS:
            raise InvariantViolation(
                "sampler-bound",
                f"gauge sample at t={sampler.samples[-1].t} exceeds "
                f"event time t={t}",
                time=t,
            )

    # ------------------------------------------------------------------
    # Request conservation at merge points
    # ------------------------------------------------------------------
    def check_conservation(
        self, generated, reported, where: str, replica: int | None = None
    ) -> None:
        """Every generated request is accounted for exactly once.

        ``generated = finished + lost + in-flight + evacuated`` collapses
        to: the merged report holds each generated rid exactly once (the
        simulator never drops work — evacuations re-route, crashes
        re-queue) and invents none.
        """
        self.checks += 1
        want = Counter(req.rid for req in generated)
        got = Counter(req.rid for req in reported)
        if want == got:
            return
        missing = sorted((want - got).elements())
        extra = sorted((got - want).elements())
        parts = []
        if missing:
            parts.append(f"missing rids {missing[:10]}")
        if extra:
            parts.append(f"duplicated/unknown rids {extra[:10]}")
        first = (missing or extra or [None])[0]
        raise InvariantViolation(
            "request-conservation",
            f"at {where}: generated {sum(want.values())} request(s), "
            f"report accounts for {sum(got.values())} ({'; '.join(parts)})",
            replica=replica,
            rid=first,
        )
