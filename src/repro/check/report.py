"""Lint-report formatting: terminal text and the strict-JSON artifact.

The JSON payload follows the repo's export conventions
(:mod:`repro.analysis.export`): a self-describing envelope with
``schema_version`` + ``repro_version``, ``sort_keys=True``,
``allow_nan=False``, so the CI gate's artifact diffs cleanly and can be
consumed by the same tooling as result/trace exports.
"""

from __future__ import annotations

import json

from repro import __version__
from repro.check.linter import LintResult
from repro.check.rules import RULES

#: Layout version of the ``repro check lint --json`` payload.
CHECK_SCHEMA_VERSION = 1


def result_to_dict(result: LintResult) -> dict:
    """Envelope dict for one lint run (findings + suppression inventory)."""
    return {
        "schema_version": CHECK_SCHEMA_VERSION,
        "repro_version": __version__,
        "files_checked": result.files_checked,
        "ok": result.ok,
        "findings": [
            {
                "rule": f.rule,
                "title": RULES[f.rule].title if f.rule in RULES else "",
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in result.findings
        ],
        "suppressions": [
            {
                "rule": s.rule,
                "path": s.path,
                "line": s.line,
                "reason": s.reason,
                "used": s.used,
            }
            for s in result.suppressions
        ],
    }


def result_to_json(result: LintResult) -> str:
    """Strict-JSON lint report (stable key order, no NaN/Infinity)."""
    return json.dumps(
        result_to_dict(result), indent=2, sort_keys=True, allow_nan=False
    )


def format_result(result: LintResult) -> str:
    """Human-readable lint report for terminals and CI logs."""
    lines = [f.format() for f in result.findings]
    used = [s for s in result.suppressions if s.used]
    if used:
        lines.append("")
        lines.append(f"honored suppressions ({len(used)}):")
        for s in used:
            reason = f" reason: {s.reason}" if s.reason else ""
            lines.append(f"  {s.path}:{s.line}: allow[{s.rule}]{reason}")
    lines.append("")
    verdict = "ok" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"checked {result.files_checked} file(s): {verdict}"
        f" ({len(used)} suppression(s) honored)"
    )
    return "\n".join(lines)
