"""Entry points for the determinism linter.

Shared by ``repro check lint`` (subcommand of the main CLI) and
``python -m repro.check`` (standalone, e.g. as a pre-commit hook).
Exit status is the gate: 0 when clean, 1 when findings survive.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.check.linter import lint_paths
from repro.check.report import format_result, result_to_json

#: Default lint target: the installed package source.
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent


def run_lint(paths: list[str], json_out: bool = False, out=None) -> int:
    """Lint ``paths`` (default: the repro package); returns exit status."""
    out = sys.stdout if out is None else out
    targets = [Path(p) for p in paths] if paths else [_PACKAGE_ROOT]
    result = lint_paths(targets)
    if json_out:
        out.write(result_to_json(result) + "\n")
    else:
        out.write(format_result(result) + "\n")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Determinism lint over repro source (see `repro list checks`).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the strict-JSON report instead of text",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint(args.paths, json_out=args.json)
