"""``python -m repro.check`` — standalone determinism lint gate."""

from __future__ import annotations

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
