"""Correctness tooling: determinism linter + runtime invariant sanitizer.

Two halves of one contract (see README "Correctness tooling"):

- :mod:`repro.check.linter` statically enforces the source conventions
  the determinism guarantees rest on (rules RPD001-RPD006, registry in
  :mod:`repro.check.rules`) — run via ``repro check lint`` or
  ``python -m repro.check``;
- :mod:`repro.check.invariants` validates deep structural invariants
  (refcount conservation, event monotonicity, request conservation) at
  runtime under ``--check-invariants``, off by default and free when off.
"""

from __future__ import annotations

from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.linter import Finding, LintResult, Suppression, lint_file, lint_paths
from repro.check.report import CHECK_SCHEMA_VERSION, format_result, result_to_json
from repro.check.rules import CHECKS, RULES

__all__ = [
    "CHECKS",
    "CHECK_SCHEMA_VERSION",
    "Finding",
    "InvariantChecker",
    "InvariantViolation",
    "LintResult",
    "RULES",
    "Suppression",
    "format_result",
    "lint_file",
    "lint_paths",
    "result_to_json",
]
