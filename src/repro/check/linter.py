"""AST-based determinism linter (the rules live in :mod:`repro.check.rules`).

One pass per file: a single visitor walks the tree carrying a set of
*guarded* expressions (receivers proven non-None on the current path,
for RPD004) and emits :class:`Finding` records with file:line positions.
Suppression comments (``# repro: allow[RPDxxx] reason: ...``) are parsed
straight from the source text; honoring one marks it used, and unused
suppressions are themselves findings (RPD000), so the exception
inventory cannot rot.

Scope is path-based: measurement harnesses (``perfbench``) are exempt
from the wall-clock and set-order rules (they time the simulator, they
are not simulation), the obs package is exempt from the guard rule (its
internals *are* the handles), and ``repro._rng`` is the one sanctioned
home of raw RNG.  Everything else is simulation code and checked.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.rules import RPD005_EXCLUSIONS, RULES

#: Handle names whose method calls / attribute stores must be guarded
#: (RPD004).  Matched against the receiver's terminal name, so
#: ``self._obs``, ``engine.obs``, and a bare ``tracer`` all count.
OBS_HANDLE_NAMES = frozenset(
    {"obs", "_obs", "tracer", "observer", "sampler", "_sampler", "telemetry"}
)

#: Wall-clock callables (RPD002), by (module, attribute).
_WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Aggregations whose result depends on iteration order (RPD003): a bare
#: set fed to these leaks hash order into floats or sequences.  Order-
#: independent reductions (max/min/any/all/len) are deliberately absent.
_ORDER_SENSITIVE_AGGS = frozenset({"sum", "list", "tuple"})

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z0-9,\s]+)\]"
    r"(?:\s*reason:\s*(?P<reason>.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """One honored-or-not ``# repro: allow[...]`` comment."""

    rule: str
    path: str
    line: int
    reason: str
    used: bool = False


@dataclass
class LintResult:
    """Outcome of one lint run: surviving findings + suppression inventory."""

    findings: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def parse_suppressions(source: str, path: str) -> dict[int, list[Suppression]]:
    """``line -> suppressions`` declared on that line."""
    table: dict[int, list[Suppression]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        reason = (match.group("reason") or "").strip()
        for rule_id in match.group("rules").split(","):
            rule_id = rule_id.strip()
            if rule_id:
                table.setdefault(lineno, []).append(
                    Suppression(rule=rule_id, path=path, line=lineno, reason=reason)
                )
    return table


def _rel_parts(path: Path) -> tuple[str, ...]:
    """Path parts relative to the ``repro`` package (or just the name)."""
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return parts[i + 1 :]
    return (path.name,)


def _rule_scope(parts: tuple[str, ...]) -> set[str]:
    """Rule ids applicable to the file at ``parts`` (package-relative)."""
    if parts and parts[0] == "check":
        return set()  # the linter does not police itself
    scope = {"RPD001", "RPD002", "RPD003", "RPD004", "RPD005", "RPD006"}
    if parts and parts[0] == "_rng.py":
        scope.discard("RPD001")  # the sanctioned RNG home
    if parts and parts[0] == "perfbench":
        # Measurement harness: it times the simulator on purpose, and its
        # scenario tables are ordered lists, not sim state.
        scope.discard("RPD002")
        scope.discard("RPD003")
    if parts and parts[0] == "obs":
        scope.discard("RPD004")  # the handles' own implementation
    return scope


def _terminal_name(node: ast.expr) -> str | None:
    """Rightmost identifier of a Name/Attribute receiver expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _key(node: ast.expr) -> str:
    """Structural identity of an expression (guard bookkeeping)."""
    return ast.dump(node)


def _guard_sets(test: ast.expr) -> tuple[set[str], set[str]]:
    """``(guarded_if_true, guarded_if_false)`` receiver keys of a test."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if isinstance(right, ast.Constant) and right.value is None:
            if isinstance(op, ast.IsNot):
                return {_key(left)}, set()
            if isinstance(op, ast.Is):
                return set(), {_key(left)}
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        true_set, false_set = _guard_sets(test.operand)
        return false_set, true_set
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        true_set: set[str] = set()
        for value in test.values:
            true_set |= _guard_sets(value)[0]
        return true_set, set()
    return set(), set()


def _is_bare_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to an unordered set right here."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_listing_call(node: ast.expr) -> bool:
    """``os.listdir(...)`` / ``.iterdir()`` / ``.scandir()`` / ``.glob()``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name in ("listdir", "scandir", "iterdir", "glob", "rglob")


def _terminates(stmts: list[ast.stmt]) -> bool:
    """Whether a block always leaves its enclosing suite (guard clause)."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class _FileLinter:
    """One file's lint pass: rule visitors sharing a guard-tracking walk."""

    def __init__(self, path: str, parts: tuple[str, ...], tree: ast.Module) -> None:
        self.path = path
        self.scope = _rule_scope(parts)
        self.tree = tree
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self._walk_block(self.tree.body, set())
        if "RPD005" in self.scope or "RPD006" in self.scope:
            for node in ast.walk(self.tree):
                if isinstance(node, ast.ClassDef) and "RPD005" in self.scope:
                    self._check_spec_class(node)
                if isinstance(node, ast.Call) and "RPD006" in self.scope:
                    self._check_param_bounds(node)
        return self.findings

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.scope:
            self.findings.append(
                Finding(
                    rule=rule,
                    path=self.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=message,
                )
            )

    # ------------------------------------------------------------------
    # Guard-tracking walk (statements)
    # ------------------------------------------------------------------
    def _walk_block(self, stmts: list[ast.stmt], guards: set[str]) -> None:
        """Walk a statement suite; guard clauses extend the suite's tail."""
        guards = set(guards)
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                true_set, false_set = _guard_sets(stmt.test)
                self._walk_expr(stmt.test, guards)
                self._walk_block(stmt.body, guards | true_set)
                self._walk_block(stmt.orelse, guards | false_set)
                # ``if x is None: return`` proves x for the rest of the suite.
                if false_set and _terminates(stmt.body):
                    guards |= false_set
                if true_set and _terminates(stmt.orelse):
                    guards |= true_set
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in stmt.decorator_list:
                    self._walk_expr(deco, guards)
                # A nested function body runs later: guards do not carry in.
                self._walk_block(stmt.body, set())
            elif isinstance(stmt, ast.ClassDef):
                for deco in stmt.decorator_list:
                    self._walk_expr(deco, guards)
                self._walk_block(stmt.body, set())
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_iteration(stmt.iter)
                self._walk_expr(stmt.iter, guards)
                self._walk_block(stmt.body, guards)
                self._walk_block(stmt.orelse, guards)
            elif isinstance(stmt, ast.While):
                true_set, _ = _guard_sets(stmt.test)
                self._walk_expr(stmt.test, guards)
                self._walk_block(stmt.body, guards | true_set)
                self._walk_block(stmt.orelse, guards)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._walk_expr(item.context_expr, guards)
                self._walk_block(stmt.body, guards)
            elif isinstance(stmt, ast.Try):
                self._walk_block(stmt.body, guards)
                for handler in stmt.handlers:
                    self._walk_block(handler.body, guards)
                self._walk_block(stmt.orelse, guards)
                self._walk_block(stmt.finalbody, guards)
            elif isinstance(stmt, ast.Assign):
                self._check_obs_store(stmt.targets, guards, stmt)
                self._walk_expr(stmt.value, guards)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if stmt.value is not None:
                    self._walk_expr(stmt.value, guards)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._check_import(stmt)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._walk_expr(child, guards)
                    elif isinstance(child, ast.stmt):
                        self._walk_block([child], guards)

    # ------------------------------------------------------------------
    # Guard-tracking walk (expressions)
    # ------------------------------------------------------------------
    def _walk_expr(self, node: ast.expr | None, guards: set[str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                acc = set(guards)
                for value in node.values:
                    self._walk_expr(value, acc)
                    acc |= _guard_sets(value)[0]
            else:  # Or: later operands run when earlier ones are falsy
                acc = set(guards)
                for value in node.values:
                    self._walk_expr(value, acc)
                    acc |= _guard_sets(value)[1]
            return
        if isinstance(node, ast.IfExp):
            true_set, false_set = _guard_sets(node.test)
            self._walk_expr(node.test, guards)
            self._walk_expr(node.body, guards | true_set)
            self._walk_expr(node.orelse, guards | false_set)
            return
        if isinstance(node, ast.Call):
            self._check_obs_call(node, guards)
            self._check_wallclock(node)
            self._check_order_sensitive_agg(node)
            self._check_numpy_random(node.func)
        if isinstance(node, ast.Attribute):
            self._check_numpy_random(node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                self._check_iteration(gen.iter)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._walk_expr(child, guards)
            elif isinstance(child, ast.comprehension):
                self._walk_expr(child.iter, guards)
                for cond in child.ifs:
                    self._walk_expr(cond, guards)

    # ------------------------------------------------------------------
    # RPD001: raw RNG
    # ------------------------------------------------------------------
    def _check_import(self, stmt: ast.Import | ast.ImportFrom) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                root = alias.name.split(".")[0]
                if root == "random" or alias.name.startswith("numpy.random"):
                    self._emit(
                        "RPD001",
                        stmt,
                        f"import of {alias.name!r}: all randomness must flow "
                        "through repro._rng.derive_seed",
                    )
        else:
            module = stmt.module or ""
            if module == "random" or module.startswith("numpy.random"):
                self._emit(
                    "RPD001",
                    stmt,
                    f"import from {module!r}: all randomness must flow "
                    "through repro._rng.derive_seed",
                )
            elif module == "numpy":
                for alias in stmt.names:
                    if alias.name == "random":
                        self._emit(
                            "RPD001",
                            stmt,
                            "import of numpy.random: all randomness must "
                            "flow through repro._rng.derive_seed",
                        )
            elif module == "time":
                for alias in stmt.names:
                    if alias.name in _WALLCLOCK_TIME_ATTRS:
                        self._emit(
                            "RPD002",
                            stmt,
                            f"import of time.{alias.name}: wall clock is "
                            "forbidden in simulation code (use SimClock)",
                        )

    def _check_numpy_random(self, node: ast.expr) -> None:
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            self._emit(
                "RPD001",
                node,
                "numpy.random access: all randomness must flow through "
                "repro._rng.derive_seed",
            )

    # ------------------------------------------------------------------
    # RPD002: wall clock
    # ------------------------------------------------------------------
    def _check_wallclock(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "time" and func.attr in _WALLCLOCK_TIME_ATTRS:
                self._emit(
                    "RPD002",
                    node,
                    f"time.{func.attr}() reads the wall clock; simulated "
                    "time must come from SimClock",
                )
            elif (
                value.id in ("datetime", "date")
                and func.attr in _WALLCLOCK_DATETIME_ATTRS
            ):
                self._emit(
                    "RPD002",
                    node,
                    f"{value.id}.{func.attr}() reads the wall clock; "
                    "simulated time must come from SimClock",
                )
        elif (
            isinstance(value, ast.Attribute)
            and value.attr == "datetime"
            and func.attr in _WALLCLOCK_DATETIME_ATTRS
        ):
            self._emit(
                "RPD002",
                node,
                f"datetime.{func.attr}() reads the wall clock; simulated "
                "time must come from SimClock",
            )

    # ------------------------------------------------------------------
    # RPD003: unordered iteration
    # ------------------------------------------------------------------
    def _check_iteration(self, iterable: ast.expr) -> None:
        if _is_bare_set_expr(iterable):
            self._emit(
                "RPD003",
                iterable,
                "iteration over a bare set/frozenset visits hash order; "
                "wrap it in sorted(...)",
            )
        elif _is_listing_call(iterable):
            self._emit(
                "RPD003",
                iterable,
                "directory listings are filesystem-ordered; wrap the "
                "listing in sorted(...)",
            )

    def _check_order_sensitive_agg(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_AGGS
            and node.args
            and (_is_bare_set_expr(node.args[0]) or _is_listing_call(node.args[0]))
        ):
            self._emit(
                "RPD003",
                node,
                f"{node.func.id}() over an unordered iterable depends on "
                "hash/filesystem order; wrap it in sorted(...)",
            )

    # ------------------------------------------------------------------
    # RPD004: unguarded obs call sites
    # ------------------------------------------------------------------
    def _check_obs_call(self, node: ast.Call, guards: set[str]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if _terminal_name(receiver) in OBS_HANDLE_NAMES and _key(receiver) not in guards:
            self._emit(
                "RPD004",
                node,
                f"call on obs handle {ast.unparse(receiver)!r} without an "
                f"`if {ast.unparse(receiver)} is not None` guard "
                "(observability must stay passive)",
            )

    def _check_obs_store(
        self, targets: list[ast.expr], guards: set[str], stmt: ast.stmt
    ) -> None:
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            receiver = target.value
            if (
                _terminal_name(receiver) in OBS_HANDLE_NAMES
                and _key(receiver) not in guards
            ):
                self._emit(
                    "RPD004",
                    stmt,
                    f"store on obs handle {ast.unparse(receiver)!r} without "
                    f"an `if {ast.unparse(receiver)} is not None` guard "
                    "(observability must stay passive)",
                )

    # ------------------------------------------------------------------
    # RPD005: Spec field coverage in to_dict
    # ------------------------------------------------------------------
    def _check_spec_class(self, node: ast.ClassDef) -> None:
        if not node.name.endswith("Spec"):
            return
        to_dict = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "to_dict"
            ),
            None,
        )
        if to_dict is None:
            return  # no canonical form: nothing to be incomplete against
        mentioned: set[str] = set()
        for sub in ast.walk(to_dict):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                mentioned.add(sub.value)
            elif (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                mentioned.add(sub.attr)
        for item in node.body:
            if not isinstance(item, ast.AnnAssign) or not isinstance(
                item.target, ast.Name
            ):
                continue
            name = item.target.id
            if name.startswith("_") or "ClassVar" in ast.dump(item.annotation):
                continue
            if name in mentioned:
                continue
            if f"{node.name}.{name}" in RPD005_EXCLUSIONS:
                continue
            self._emit(
                "RPD005",
                item,
                f"field {node.name}.{name} never appears in to_dict(): "
                "it cannot participate in the cache key (add it, or list "
                "it in repro.check.rules.RPD005_EXCLUSIONS with a reason)",
            )

    # ------------------------------------------------------------------
    # RPD006: Param bounds
    # ------------------------------------------------------------------
    def _check_param_bounds(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "Param"):
            return
        kind = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            kind = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
                kind = kw.value.value
        if kind not in ("int", "float"):
            return
        bounded = any(
            kw.arg in ("minimum", "maximum", "exclusive_min", "exclusive_max")
            for kw in node.keywords
        )
        if not bounded:
            name = ""
            if node.args and isinstance(node.args[0], ast.Constant):
                name = f" {node.args[0].value!r}"
            self._emit(
                "RPD006",
                node,
                f"numeric Param{name} declares no bounds "
                "(minimum/maximum/exclusive_min/exclusive_max): nonsense "
                "values surface mid-run instead of at parse time",
            )


def lint_file(path: Path, source: str | None = None) -> tuple[list[Finding], list[Suppression]]:
    """Lint one file; returns (surviving findings, suppression inventory)."""
    parts = _rel_parts(path)
    if not _rule_scope(parts):
        return [], []  # out of scope entirely (the check package itself)
    text = path.read_text(encoding="utf-8") if source is None else source
    display = str(path)
    tree = ast.parse(text, filename=display)
    raw = _FileLinter(display, parts, tree).run()
    by_line = parse_suppressions(text, display)
    survivors: list[Finding] = []
    for finding in raw:
        hit = next(
            (
                s
                for s in by_line.get(finding.line, ())
                if s.rule == finding.rule
            ),
            None,
        )
        if hit is not None:
            hit.used = True
        else:
            survivors.append(finding)
    suppressions = [s for entries in by_line.values() for s in entries]
    for s in suppressions:
        if not s.used and s.rule in RULES and s.rule != "RPD000":
            survivors.append(
                Finding(
                    rule="RPD000",
                    path=display,
                    line=s.line,
                    col=1,
                    message=(
                        f"suppression for {s.rule} matches no finding on this "
                        "line (fixed violation, or comment drifted) — delete it"
                    ),
                )
            )
    return survivors, suppressions


def lint_paths(paths: list[Path]) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    result = LintResult()
    for file_path in files:
        findings, suppressions = lint_file(file_path)
        result.findings.extend(findings)
        result.suppressions.extend(suppressions)
        result.files_checked += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressions.sort(key=lambda s: (s.path, s.line, s.rule))
    return result
