"""The determinism rule registry (RPD = RePro Determinism).

Every guarantee the simulator sells — byte-identical fixed-seed runs,
cache keys that never fork on cosmetic knobs, strictly passive
observability — rests on a handful of source-level conventions.  Each
rule below names one convention, the hazard it guards against, and an
example violation; :mod:`repro.check.linter` enforces them over the AST.

Intentional exceptions carry a suppression comment on the offending
line::

    t0 = time.perf_counter()  # repro: allow[RPD002] reason: measures real CPU time

The linter inventories every suppression it honors (they are part of the
lint report, see ``repro check lint --json``) and flags suppressions
that no longer match a finding (RPD000), so the exception list can never
silently rot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One determinism rule: identity, rationale, and a violating example."""

    id: str
    title: str
    rationale: str
    example: str


#: ``*Spec`` dataclass fields deliberately missing from their class's
#: canonical ``to_dict`` payload (RPD005).  Every entry needs a reason:
#: an undocumented omission is exactly the cache-key-incompleteness bug
#: the rule exists to catch.
RPD005_EXCLUSIONS: dict[str, str] = {
    # Observation is strictly passive (see repro.obs.spec): an obs knob
    # must never fork a cache key, so the section is excluded by design.
    "ExperimentSpec.obs": "observability is passive and never forks results",
}

RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="RPD000",
            title="unused suppression",
            rationale=(
                "A `# repro: allow[...]` comment that matches no finding is "
                "dead: either the violation it excused was fixed (delete the "
                "comment) or the comment drifted off the offending line (it "
                "is silently excusing nothing).  Flagging unused suppressions "
                "keeps the exception inventory honest."
            ),
            example="x = 1  # repro: allow[RPD002] reason: stale",
        ),
        Rule(
            id="RPD001",
            title="raw RNG outside repro._rng",
            rationale=(
                "All randomness must flow through repro._rng (splitmix64 + "
                "derive_seed), whose streams are pure functions of the run "
                "seed and stable across Python/numpy versions.  `random` and "
                "`numpy.random` draw from global or platform-dependent "
                "state, so one stray import forks fixed-seed runs."
            ),
            example="import random; jitter = random.random()",
        ),
        Rule(
            id="RPD002",
            title="wall clock in simulation code",
            rationale=(
                "Simulated time is SimClock; real time (time.time, "
                "time.monotonic, time.perf_counter, datetime.now) differs "
                "every run, so any value derived from it breaks "
                "byte-identical replay.  Measurement harnesses that time the "
                "simulator itself (repro.perfbench) are out of scope; a "
                "measurement inside sim code needs an explicit allow with "
                "proof the value never reaches a result."
            ),
            example="latency += time.perf_counter() - t0",
        ),
        Rule(
            id="RPD003",
            title="unordered iteration in sim paths",
            rationale=(
                "Iterating a set/frozenset or os.listdir output visits "
                "elements in hash/filesystem order, which varies across "
                "processes (PYTHONHASHSEED, platform).  In simulation code "
                "that order leaks into float-summation and event ordering, "
                "silently forking fixed-seed runs.  Wrap the iterable in "
                "sorted(...) or use an order-preserving container."
            ),
            example="for rid in set(pending): total += cost[rid]",
        ),
        Rule(
            id="RPD004",
            title="unguarded obs/trace call site",
            rationale=(
                "Observability is strictly passive: obs-off runs must not "
                "even pay an attribute lookup chain, and obs-on runs must "
                "be byte-identical.  Every call on an observer/tracer/"
                "sampler handle must sit under an `if <handle> is not None` "
                "guard so disabled runs execute one cheap check and nothing "
                "else."
            ),
            example="self._obs.event(now, 'crash', replica=idx)  # no guard",
        ),
        Rule(
            id="RPD005",
            title="Spec field missing from to_dict",
            rationale=(
                "ExperimentSpec sections are content-addressed: the cache "
                "key hashes to_dict().  A dataclass field that can change a "
                "result but is missing from to_dict makes two different "
                "experiments collide on one cache record.  Fields excluded "
                "on purpose (e.g. the passive ObsSpec section) must be "
                "listed in RPD005_EXCLUSIONS with a reason."
            ),
            example="@dataclass class FooSpec: knob: int = 0  # to_dict omits 'knob'",
        ),
        Rule(
            id="RPD006",
            title="numeric Param without bounds",
            rationale=(
                "Registry components expose `name:key=val` spec-grammar "
                "parameters; an int/float Param without minimum/maximum "
                "bounds accepts nonsense (negative rates, zero capacities) "
                "that surfaces as NaNs or hangs deep inside a run instead "
                "of a parse-time error."
            ),
            example='Param("slow", kind="float")  # no minimum/maximum',
        ),
    )
}


class _RuleIndex:
    """``repro list checks`` adapter with the Registry.describe() shape."""

    kind = "check"

    def describe(self) -> list[dict]:
        rows = []
        for rule in sorted(RULES.values(), key=lambda r: r.id):
            params = [f"rationale: {rule.rationale}", f"example: {rule.example}"]
            if rule.id == "RPD005":
                params += [
                    f"excluded: {name} ({why})"
                    for name, why in sorted(RPD005_EXCLUSIONS.items())
                ]
            rows.append(
                {
                    "name": rule.id,
                    "summary": rule.title,
                    "aliases": [],
                    "params": params,
                }
            )
        return rows


#: Registry-shaped index of the determinism rules (``repro list checks``).
CHECKS = _RuleIndex()
